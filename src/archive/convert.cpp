#include "src/archive/convert.hpp"

#include <bit>
#include <fstream>
#include <sstream>

#include "src/archive/writer.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::archive {
namespace {

double as_f64(std::uint64_t raw) { return std::bit_cast<double>(raw); }
std::int64_t as_i64(std::uint64_t raw) {
  return std::bit_cast<std::int64_t>(raw);
}

/// Decodes every column of `chunk` into `cols`; on a rotted payload,
/// skips-and-reports (or throws when strict) and returns false.
bool decode_all(const ArchiveReader& reader, const ChunkView& chunk,
                std::int64_t ordinal, ArchiveReport* report,
                std::vector<std::vector<std::uint64_t>>* cols) {
  for (std::uint32_t c = 0; c < chunk.cols.size(); ++c) {
    try {
      reader.decode_column(chunk, c, &(*cols)[c]);
    } catch (const ArchiveError& e) {
      note_archive_skip(report, ordinal, chunk.rows, e.what());
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<rs2hpm::IntervalRecord> to_intervals(const ArchiveReader& reader,
                                                 ArchiveReport* report) {
  std::vector<rs2hpm::IntervalRecord> out;
  out.reserve(reader.rows(TableKind::kIntervals));
  std::vector<std::vector<std::uint64_t>> cols(
      column_count(TableKind::kIntervals));
  std::int64_t ordinal = 0;
  for (const ChunkView& chunk : reader.chunks(TableKind::kIntervals)) {
    if (!decode_all(reader, chunk, ordinal++, report, &cols)) continue;
    for (std::uint32_t i = 0; i < chunk.rows; ++i) {
      rs2hpm::IntervalRecord rec;
      rec.interval = as_i64(cols[icol::kInterval][i]);
      rec.nodes_sampled = static_cast<int>(as_i64(cols[icol::kSampled][i]));
      rec.nodes_expected =
          static_cast<int>(as_i64(cols[icol::kExpected][i]));
      rec.nodes_reprimed =
          static_cast<int>(as_i64(cols[icol::kReprimed][i]));
      rec.busy_nodes = static_cast<int>(as_i64(cols[icol::kBusy][i]));
      rec.quad_surplus = cols[icol::kQuad][i];
      for (std::size_t j = 0; j < hpm::kNumCounters; ++j) {
        rec.delta.user[j] = cols[icol::kUser0 + j][i];
        rec.delta.system[j] = cols[icol::kSystem0 + j][i];
      }
      out.push_back(rec);
    }
  }
  return out;
}

pbs::JobDatabase to_jobs(const ArchiveReader& reader,
                         ArchiveReport* report) {
  pbs::JobDatabase db;
  std::vector<std::vector<std::uint64_t>> cols(
      column_count(TableKind::kJobs));
  std::int64_t ordinal = 0;
  for (const ChunkView& chunk : reader.chunks(TableKind::kJobs)) {
    if (!decode_all(reader, chunk, ordinal++, report, &cols)) continue;
    for (std::uint32_t i = 0; i < chunk.rows; ++i) {
      pbs::JobRecord rec;
      rec.spec.job_id = as_i64(cols[jcol::kJobId][i]);
      rec.spec.user_id =
          static_cast<std::int32_t>(as_i64(cols[jcol::kUserId][i]));
      rec.spec.nodes_requested =
          static_cast<int>(as_i64(cols[jcol::kNodes][i]));
      rec.spec.submit_time_s = as_f64(cols[jcol::kSubmit][i]);
      rec.start_time_s = as_f64(cols[jcol::kStart][i]);
      rec.end_time_s = as_f64(cols[jcol::kEnd][i]);
      rec.report.job_id = rec.spec.job_id;
      rec.report.nodes = rec.spec.nodes_requested;
      rec.report.elapsed_s = rec.end_time_s - rec.start_time_s;
      rec.report.complete = cols[jcol::kComplete][i] != 0;
      rec.report.quad_surplus = cols[jcol::kQuad][i];
      for (std::size_t j = 0; j < hpm::kNumCounters; ++j) {
        rec.report.delta.user[j] = cols[jcol::kUser0 + j][i];
        rec.report.delta.system[j] = cols[jcol::kSystem0 + j][i];
      }
      db.add(std::move(rec));
    }
  }
  return db;
}

std::string archive_from_records(
    std::span<const rs2hpm::IntervalRecord> intervals,
    std::span<const pbs::JobRecord> jobs, std::size_t rows_per_chunk) {
  ArchiveWriter w(rows_per_chunk);
  for (const rs2hpm::IntervalRecord& r : intervals) w.append_interval(r);
  for (const pbs::JobRecord& r : jobs) w.append_job(r);
  return w.finish();
}

bool text_to_archive(const std::string& intervals_path,
                     const std::string& jobs_path,
                     const std::string& archive_path, std::string* error,
                     analysis::ParseReport* intervals_report,
                     analysis::ParseReport* jobs_report) {
  ArchiveWriter w;
  try {
    if (!intervals_path.empty()) {
      std::ifstream in(intervals_path);
      if (!in) {
        *error = "cannot open '" + intervals_path + "'";
        return false;
      }
      for (const rs2hpm::IntervalRecord& r :
           analysis::load_intervals(in, intervals_report)) {
        w.append_interval(r);
      }
    }
    if (!jobs_path.empty()) {
      std::ifstream in(jobs_path);
      if (!in) {
        *error = "cannot open '" + jobs_path + "'";
        return false;
      }
      const pbs::JobDatabase db = analysis::load_jobs(in, jobs_report);
      for (const pbs::JobRecord& r : db.all()) w.append_job(r);
    }
  } catch (const std::runtime_error& e) {
    *error = e.what();
    return false;
  }
  return w.finalize(archive_path, error);
}

bool archive_to_text(const std::string& archive_path,
                     const std::string& intervals_path,
                     const std::string& jobs_path, std::string* error,
                     ArchiveReport* report) {
  try {
    const ArchiveReader reader = ArchiveReader::open(archive_path, report);
    if (!intervals_path.empty()) {
      std::ostringstream text;
      analysis::save_intervals(text, to_intervals(reader, report));
      if (!util::write_file_durable(intervals_path, text.str(), error)) {
        return false;
      }
    }
    if (!jobs_path.empty()) {
      std::ostringstream text;
      analysis::save_jobs(text, to_jobs(reader, report));
      if (!util::write_file_durable(jobs_path, text.str(), error)) {
        return false;
      }
    }
  } catch (const ArchiveError& e) {
    *error = e.what();
    return false;
  }
  return true;
}

}  // namespace p2sim::archive
