// Batch job descriptions for the Portable Batch System model.
//
// PBS gave users dedicated nodes and enforced allocation policy directly
// (section 2).  A JobSpec is what the scheduler sees at submission; the
// fields that drive the *performance* of the job (which kernel it runs,
// its communication pattern, its memory demand) are carried opaquely in
// `profile_id` and `memory_mb_per_node` — the scheduler allocates nodes,
// it does not interpret the science.
#pragma once

#include <cstdint>

#include "src/util/ckpt.hpp"

namespace p2sim::pbs {

enum class JobKind : std::uint8_t {
  kBatch = 0,
  kInteractive = 1,  ///< PBS also provided interactive logins for debugging
};

struct JobSpec {
  std::int64_t job_id = 0;
  std::int32_t user_id = 0;
  int nodes_requested = 1;
  double submit_time_s = 0.0;
  /// Actual runtime once started (the simulator knows it; a real scheduler
  /// would only know the user's request).
  double runtime_s = 0.0;
  /// Requested wall time (PBS limit; >= runtime_s for well-behaved jobs).
  double walltime_request_s = 0.0;
  /// Per-node memory demand in MB (drives the paging model).
  double memory_mb_per_node = 64.0;
  /// Opaque handle to the workload profile (kernel + comm pattern).
  std::int64_t profile_id = 0;
  JobKind kind = JobKind::kBatch;

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(job_id);
    w.put_i32(user_id);
    w.put_i32(nodes_requested);
    w.put_f64(submit_time_s);
    w.put_f64(runtime_s);
    w.put_f64(walltime_request_s);
    w.put_f64(memory_mb_per_node);
    w.put_i64(profile_id);
    w.put_u8(static_cast<std::uint8_t>(kind));
  }
  void restore_ckpt(util::CkptReader& r) {
    job_id = r.read_i64("job.id");
    user_id = r.read_i32("job.user_id");
    nodes_requested = r.read_i32("job.nodes_requested");
    submit_time_s = r.read_f64("job.submit_time");
    runtime_s = r.read_f64("job.runtime");
    walltime_request_s = r.read_f64("job.walltime_request");
    memory_mb_per_node = r.read_f64("job.memory_mb_per_node");
    profile_id = r.read_i64("job.profile_id");
    kind = static_cast<JobKind>(r.read_u8("job.kind"));
  }
};

}  // namespace p2sim::pbs
