// Job accounting: the database of per-job counter reports behind the
// paper's batch-job analysis (section 6, Figures 2-4).
//
// Each completed job contributes one record combining PBS facts (nodes,
// times) with the RS2HPM epilogue report.  The analysis in the paper
// examines only jobs exceeding 600 s of wall clock time, "to reduce the
// impact of the interactive sessions" — the same filter is provided here.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/pbs/job.hpp"
#include "src/rs2hpm/job_monitor.hpp"

namespace p2sim::pbs {

struct JobRecord {
  JobSpec spec;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  rs2hpm::JobCounterReport report;

  double walltime_s() const { return end_time_s - start_time_s; }
  double mflops_per_node() const { return report.mflops_per_node(); }
  double job_mflops() const { return report.job_mflops(); }
  /// A record is analyzable only when its measurement window held: both
  /// snapshots fired and no counter reset mid-job.
  bool complete() const { return report.complete; }
};

/// The paper's analysis threshold for batch jobs.
inline constexpr double kMinAnalyzedWalltimeS = 600.0;

class JobDatabase {
 public:
  void add(JobRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<JobRecord>& all() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records whose measurement window broke (lost prologue/epilogue,
  /// killed job, mid-job counter reset); excluded from all analysis.
  std::size_t incomplete_count() const;

  /// Complete jobs exceeding the wall-clock threshold (default: the
  /// paper's 600 s).  Incomplete records are never analyzed.
  std::vector<const JobRecord*> analyzed(
      double min_walltime_s = kMinAnalyzedWalltimeS) const;

  /// Analyzed jobs that requested exactly `nodes` nodes, in start order
  /// (Figure 4 plots these against "batch job number").
  std::vector<const JobRecord*> by_nodes(
      int nodes, double min_walltime_s = kMinAnalyzedWalltimeS) const;

  /// Time-weighted mean Mflops per node over analyzed jobs — the paper's
  /// "time-weighted average for the jobs in this database was 19 Mflops
  /// per node".
  double time_weighted_mflops_per_node(
      double min_walltime_s = kMinAnalyzedWalltimeS) const;

 private:
  std::vector<JobRecord> records_;
};

}  // namespace p2sim::pbs
