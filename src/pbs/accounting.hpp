// Job accounting: the database of per-job counter reports behind the
// paper's batch-job analysis (section 6, Figures 2-4).
//
// Each completed job contributes one record combining PBS facts (nodes,
// times) with the RS2HPM epilogue report.  The analysis in the paper
// examines only jobs exceeding 600 s of wall clock time, "to reduce the
// impact of the interactive sessions" — the same filter is provided here.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/pbs/job.hpp"
#include "src/rs2hpm/job_monitor.hpp"

namespace p2sim::pbs {

struct JobRecord {
  JobSpec spec;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  rs2hpm::JobCounterReport report;

  double walltime_s() const { return end_time_s - start_time_s; }
  double mflops_per_node() const { return report.mflops_per_node(); }
  double job_mflops() const { return report.job_mflops(); }
  /// A record is analyzable only when its measurement window held: both
  /// snapshots fired and no counter reset mid-job.
  bool complete() const { return report.complete; }

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    spec.save_ckpt(w);
    w.put_f64(start_time_s);
    w.put_f64(end_time_s);
    report.save_ckpt(w);
  }
  void restore_ckpt(util::CkptReader& r) {
    spec.restore_ckpt(r);
    start_time_s = r.read_f64("job_record.start_time_s");
    end_time_s = r.read_f64("job_record.end_time_s");
    report.restore_ckpt(r);
  }
};

/// The paper's analysis threshold for batch jobs.
inline constexpr double kMinAnalyzedWalltimeS = 600.0;

class JobDatabase {
 public:
  void add(JobRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<JobRecord>& all() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records whose measurement window broke (lost prologue/epilogue,
  /// killed job, mid-job counter reset); excluded from all analysis.
  std::size_t incomplete_count() const;

  /// Complete jobs exceeding the wall-clock threshold (default: the
  /// paper's 600 s).  Incomplete records are never analyzed.
  std::vector<const JobRecord*> analyzed(
      double min_walltime_s = kMinAnalyzedWalltimeS) const;

  /// Analyzed jobs that requested exactly `nodes` nodes, in start order
  /// (Figure 4 plots these against "batch job number").
  std::vector<const JobRecord*> by_nodes(
      int nodes, double min_walltime_s = kMinAnalyzedWalltimeS) const;

  /// Time-weighted mean Mflops per node over analyzed jobs — the paper's
  /// "time-weighted average for the jobs in this database was 19 Mflops
  /// per node".
  double time_weighted_mflops_per_node(
      double min_walltime_s = kMinAnalyzedWalltimeS) const;

  /// Checkpoint support: every accumulated record round-trips.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_u64(records_.size());
    for (const JobRecord& rec : records_) rec.save_ckpt(w);
  }
  void restore_ckpt(util::CkptReader& r) {
    records_.clear();
    std::uint64_t n = r.read_u64("job_db.size");
    records_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      JobRecord rec;
      rec.restore_ckpt(r);
      records_.push_back(std::move(rec));
    }
  }

 private:
  std::vector<JobRecord> records_;
};

}  // namespace p2sim::pbs
