// PBS scheduler model: dedicated-node allocation with queue draining for
// wide jobs.
//
// Section 6: "System administrators could not checkpoint MPI/PVM jobs and
// had to rely upon draining the queues to allow jobs requesting more than
// 64-nodes to execute."  The model implements first-fit-with-backfill under
// normal operation; once a wide job (> drain_threshold nodes) has waited
// past its patience, the scheduler stops backfilling and lets the machine
// drain until the wide job fits.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/pbs/job.hpp"

namespace p2sim::pbs {

struct SchedulerConfig {
  int total_nodes = 144;
  /// Jobs wider than this trigger draining instead of waiting forever.
  int drain_threshold_nodes = 64;
  /// How long a wide job waits in-queue before draining starts.
  double wide_wait_patience_s = 4 * 3600.0;
  /// Counterfactual the paper could not deploy: "System administrators
  /// could not checkpoint MPI/PVM jobs and had to rely upon draining the
  /// queues."  When true, an impatient wide job preempts (checkpoints) the
  /// youngest narrow jobs instead of idling the machine while it drains.
  /// Preempted job ids are reported via take_preempted(); the caller owns
  /// their remaining-runtime state and resubmission.
  bool checkpoint_for_wide = false;
};

/// A job start decision: which nodes the job received and when.
struct StartEvent {
  JobSpec spec;
  std::vector<int> nodes;
  double time_s = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& cfg = {});

  void submit(const JobSpec& spec);

  /// Runs the scheduling pass at time `now`: starts every queued job that
  /// policy allows and returns the start events.
  std::vector<StartEvent> schedule(double now);

  /// Publishes the machine-state gauges (queue depth, busy/offline/free
  /// nodes) to the current telemetry session.  Split out of schedule() so
  /// the campaign driver can refresh them once per interval even when a
  /// multi-interval horizon skips the scheduling pass itself; gauge values
  /// must be a function of interval state, never of how intervals were
  /// batched into passes.
  void export_gauges() const;

  /// Releases a running job's nodes (the driver calls this when the job's
  /// runtime elapses).
  void release(std::int64_t job_id);

  /// Jobs checkpointed by the last schedule() pass (their nodes are
  /// already released).  Clears the list.
  std::vector<std::int64_t> take_preempted();

  /// Node crash: takes the node out of service until restore_node().  Any
  /// job holding it is killed — its other nodes are freed and its id
  /// returned so the caller can account the loss (the PBS epilogue never
  /// fires for killed jobs) and requeue if desired.  No-op on an
  /// already-offline node.
  std::vector<std::int64_t> fail_node(int node);
  /// Returns a failed node to the free pool.
  void restore_node(int node);
  bool node_offline(int node) const;
  int offline_nodes() const { return offline_count_; }

  int free_nodes() const { return free_count_; }
  int busy_nodes() const {
    return cfg_.total_nodes - free_count_ - offline_count_;
  }
  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_.size(); }
  bool draining() const { return draining_; }
  const SchedulerConfig& config() const { return cfg_; }

  /// Nodes held by a running job (empty if unknown).
  std::vector<int> nodes_of(std::int64_t job_id) const;

  /// Checkpoint support: queue order, running allocations, per-node
  /// busy/offline flags and the draining latch all round-trip, so a
  /// restored scheduler makes the same decisions the uninterrupted one
  /// would have.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  std::vector<int> allocate(int n);

  SchedulerConfig cfg_;
  std::deque<JobSpec> queue_;
  std::map<std::int64_t, std::vector<int>> running_;
  std::vector<bool> node_busy_;
  std::vector<bool> node_offline_;
  int free_count_;
  int offline_count_ = 0;
  bool draining_ = false;
  std::vector<std::int64_t> preempted_;
};

}  // namespace p2sim::pbs
