#include "src/pbs/accounting.hpp"

#include <algorithm>
#include <cmath>

#include "src/check/check.hpp"

namespace p2sim::pbs {

std::vector<const JobRecord*> JobDatabase::analyzed(
    double min_walltime_s) const {
  std::vector<const JobRecord*> out;
  for (const JobRecord& r : records_) {
    if (r.report.complete && r.walltime_s() > min_walltime_s) {
      out.push_back(&r);
    }
  }
  return out;
}

std::vector<const JobRecord*> JobDatabase::by_nodes(
    int nodes, double min_walltime_s) const {
  std::vector<const JobRecord*> out;
  for (const JobRecord& r : records_) {
    if (r.report.complete && r.spec.nodes_requested == nodes &&
        r.walltime_s() > min_walltime_s) {
      out.push_back(&r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->start_time_s < b->start_time_s;
            });
  return out;
}

double JobDatabase::time_weighted_mflops_per_node(
    double min_walltime_s) const {
  double num = 0.0;
  double den = 0.0;
  for (const JobRecord& r : records_) {
    if (!r.report.complete) continue;  // broken window: no trustworthy rate
    const double w = r.walltime_s();
    if (w <= min_walltime_s) continue;
    const double mfn = r.mflops_per_node();
    P2SIM_CHECK(std::isfinite(mfn) && mfn >= 0.0,
                "per-node Mflops must be finite and non-negative");
    num += mfn * w;
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

std::size_t JobDatabase::incomplete_count() const {
  std::size_t n = 0;
  for (const JobRecord& r : records_) {
    if (!r.report.complete) ++n;
  }
  return n;
}

}  // namespace p2sim::pbs
