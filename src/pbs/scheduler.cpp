#include "src/pbs/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/telemetry/session.hpp"

namespace p2sim::pbs {

Scheduler::Scheduler(const SchedulerConfig& cfg)
    : cfg_(cfg),
      node_busy_(static_cast<std::size_t>(cfg.total_nodes), false),
      node_offline_(static_cast<std::size_t>(cfg.total_nodes), false),
      free_count_(cfg.total_nodes) {
  if (cfg_.total_nodes <= 0) {
    throw std::invalid_argument("scheduler needs >= 1 node");
  }
}

void Scheduler::submit(const JobSpec& spec) {
  if (spec.nodes_requested <= 0 ||
      spec.nodes_requested > cfg_.total_nodes) {
    throw std::invalid_argument("job node request out of range");
  }
  queue_.push_back(spec);
}

std::vector<int> Scheduler::allocate(int n) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < cfg_.total_nodes && static_cast<int>(out.size()) < n;
       ++i) {
    if (!node_busy_[static_cast<std::size_t>(i)] &&
        !node_offline_[static_cast<std::size_t>(i)]) {
      node_busy_[static_cast<std::size_t>(i)] = true;
      out.push_back(i);
    }
  }
  free_count_ -= n;
  return out;
}

std::vector<StartEvent> Scheduler::schedule(double now) {
  std::vector<StartEvent> started;

  // Decide whether a wide job has exhausted its patience.
  draining_ = false;
  int impatient_wide_nodes = 0;
  for (const JobSpec& j : queue_) {
    if (j.nodes_requested > cfg_.drain_threshold_nodes &&
        now - j.submit_time_s >= cfg_.wide_wait_patience_s) {
      draining_ = true;
      impatient_wide_nodes = j.nodes_requested;
      break;
    }
  }

  // Checkpointing counterfactual: instead of idling through a drain,
  // preempt the youngest narrow jobs until the wide job fits.
  if (draining_ && cfg_.checkpoint_for_wide) {
    while (free_count_ < impatient_wide_nodes && !running_.empty()) {
      // Youngest job id = most recently started (ids are monotone).
      auto victim = std::prev(running_.end());
      if (static_cast<int>(victim->second.size()) >
          cfg_.drain_threshold_nodes) {
        break;  // never preempt another wide job
      }
      preempted_.push_back(victim->first);
      release(victim->first);
    }
  }

  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const bool wide = it->nodes_requested > cfg_.drain_threshold_nodes;
      if (draining_) {
        // While draining, only the waiting wide job(s) may start, and only
        // when the machine has freed enough nodes.
        if (!wide) continue;
      }
      if (it->nodes_requested > free_count_) {
        if (draining_ && wide) break;  // keep draining for this job
        continue;                      // backfill: try the next job
      }
      StartEvent ev;
      ev.spec = *it;
      ev.time_s = now;
      ev.nodes = allocate(it->nodes_requested);
      running_.emplace(it->job_id, ev.nodes);
      started.push_back(std::move(ev));
      queue_.erase(it);
      progress = true;
      // Wide job started: normal operation resumes this pass.
      draining_ = false;
      break;
    }
  }
  return started;
}

void Scheduler::export_gauges() const {
  if (auto* tel = telemetry::current()) {
    tel->registry
        .gauge("p2sim_sched_queue_depth", "Jobs waiting in the PBS queue")
        .set(static_cast<double>(queue_.size()));
    tel->registry
        .gauge("p2sim_sched_busy_nodes", "Nodes currently running a job")
        .set(static_cast<double>(cfg_.total_nodes - free_count_ -
                                 offline_count_));
    tel->registry
        .gauge("p2sim_sched_offline_nodes",
               "Nodes out of the pool (crashed, awaiting reboot)")
        .set(static_cast<double>(offline_count_));
    tel->registry
        .gauge("p2sim_sched_free_nodes", "Nodes idle and allocatable")
        .set(static_cast<double>(free_count_));
  }
}

void Scheduler::release(std::int64_t job_id) {
  auto it = running_.find(job_id);
  if (it == running_.end()) {
    throw std::invalid_argument("release: job not running");
  }
  for (int n : it->second) {
    node_busy_[static_cast<std::size_t>(n)] = false;
  }
  free_count_ += static_cast<int>(it->second.size());
  running_.erase(it);
}

std::vector<std::int64_t> Scheduler::fail_node(int node) {
  if (node < 0 || node >= cfg_.total_nodes) {
    throw std::invalid_argument("fail_node: node id out of range");
  }
  const auto n = static_cast<std::size_t>(node);
  if (node_offline_[n]) return {};
  // Kill every job holding the node; release() frees all their nodes.
  std::vector<std::int64_t> killed;
  for (const auto& [id, held] : running_) {
    if (std::find(held.begin(), held.end(), node) != held.end()) {
      killed.push_back(id);
    }
  }
  for (std::int64_t id : killed) release(id);
  // The node itself leaves the pool (release marked it free again).
  node_offline_[n] = true;
  --free_count_;
  ++offline_count_;
  return killed;
}

void Scheduler::restore_node(int node) {
  if (node < 0 || node >= cfg_.total_nodes) {
    throw std::invalid_argument("restore_node: node id out of range");
  }
  const auto n = static_cast<std::size_t>(node);
  if (!node_offline_[n]) return;
  node_offline_[n] = false;
  ++free_count_;
  --offline_count_;
}

bool Scheduler::node_offline(int node) const {
  return node >= 0 && node < cfg_.total_nodes &&
         node_offline_[static_cast<std::size_t>(node)];
}

std::vector<std::int64_t> Scheduler::take_preempted() {
  std::vector<std::int64_t> out;
  out.swap(preempted_);
  return out;
}

std::vector<int> Scheduler::nodes_of(std::int64_t job_id) const {
  auto it = running_.find(job_id);
  return it == running_.end() ? std::vector<int>{} : it->second;
}

void Scheduler::save_ckpt(util::CkptWriter& w) const {
  w.put_u64(queue_.size());
  for (const JobSpec& j : queue_) j.save_ckpt(w);
  w.put_u64(running_.size());
  for (const auto& [id, nodes] : running_) {
    w.put_i64(id);
    w.put_u64(nodes.size());
    for (int n : nodes) w.put_i32(n);
  }
  for (bool b : node_busy_) w.put_bool(b);
  for (bool b : node_offline_) w.put_bool(b);
  w.put_i32(free_count_);
  w.put_i32(offline_count_);
  w.put_bool(draining_);
  w.put_u64(preempted_.size());
  for (std::int64_t id : preempted_) w.put_i64(id);
}

void Scheduler::restore_ckpt(util::CkptReader& r) {
  queue_.clear();
  std::uint64_t nq = r.read_u64("sched.queue_size");
  for (std::uint64_t i = 0; i < nq; ++i) {
    JobSpec j;
    j.restore_ckpt(r);
    queue_.push_back(j);
  }
  running_.clear();
  std::uint64_t nr = r.read_u64("sched.running_size");
  for (std::uint64_t i = 0; i < nr; ++i) {
    std::int64_t id = r.read_i64("sched.running_id");
    std::uint64_t nn = r.read_u64("sched.running_nodes");
    std::vector<int> nodes(static_cast<std::size_t>(nn));
    for (int& n : nodes) n = r.read_i32("sched.running_node");
    running_.emplace(id, std::move(nodes));
  }
  for (std::size_t i = 0; i < node_busy_.size(); ++i) {
    node_busy_[i] = r.read_bool("sched.node_busy");
  }
  for (std::size_t i = 0; i < node_offline_.size(); ++i) {
    node_offline_[i] = r.read_bool("sched.node_offline");
  }
  free_count_ = r.read_i32("sched.free_count");
  offline_count_ = r.read_i32("sched.offline_count");
  draining_ = r.read_bool("sched.draining");
  preempted_.clear();
  std::uint64_t np = r.read_u64("sched.preempted_size");
  for (std::uint64_t i = 0; i < np; ++i) {
    preempted_.push_back(r.read_i64("sched.preempted_id"));
  }
}

}  // namespace p2sim::pbs
