#include "src/check/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace p2sim::check {

[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& context) {
  std::fprintf(stderr, "p2sim: %s violated at %s:%d\n  expression: %s\n",
               kind, file, line, expr);
  if (!context.empty()) {
    std::fprintf(stderr, "  context: %s\n", context.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

bool library_checks_enabled() noexcept {
  // This TU is compiled with the library's flags, so its view of
  // P2SIM_CHECKS_ENABLED is the one the in-library hooks were built with.
  return P2SIM_CHECKS_ENABLED != 0;
}

}  // namespace p2sim::check
