// Cross-counter invariant audit — machine-checked versions of the counter
// identities the paper's tables rely on.
//
// RS2HPM derived every reported rate (Tables 2-4) from the 22-counter
// selection of Table 1, under accounting rules stated in sections 2 and 5:
//   * an fma counts ONCE as an FPU instruction but TWICE as flops — its
//     add half is folded into fpop.fp_add and its multiply half is the
//     fpop.fp_muladd count itself (section 5, Table 3 footnote);
//   * a quad load/store is ONE FXU instruction that moves two words (the
//     Mops-vs-Mips gap of Table 2);
//   * cache and TLB misses are a subset of the FXU's load/store traffic
//     (Table 4's per-reference ratios assume this denominator);
//   * user.dcache_store fires only on a modified-victim eviction, which
//     only happens when a reload displaces a line (section 2's write-back
//     D-cache description);
//   * the in-order machine never completes more than it dispatched.
// The InvariantAuditor holds these identities as named, registered rules
// and audits EventCounts batches (from the cycle-level core or the
// signature-scaled workload engine) and 64-bit counter totals (from the
// RS2HPM extension layer) against them.
//
// Audit scope matters: EventSignature::scale rounds every field
// independently, so identities that compare SUMS of fields can be off by
// a count or two after scaling even though the underlying rates satisfy
// them exactly.  Single-field comparisons survive rounding (llround is
// monotone), so rules are tagged: `exact_only` rules run only on counts
// produced directly by the core; the rest run everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/check.hpp"
#include "src/hpm/events.hpp"
#include "src/power2/event_counts.hpp"

namespace p2sim::check {

/// One detected identity violation.
struct Violation {
  std::string identity;  ///< registered rule name, e.g. "fma-add-half-folded"
  std::string detail;    ///< the numbers that broke it
};

/// 64-bit totals for one privilege mode (layout-compatible with
/// rs2hpm::CounterTotals, which lives above this layer).
using Totals64 = std::array<std::uint64_t, hpm::kNumCounters>;

/// Where the audited counts came from (see header comment).
enum class AuditScope {
  kExact,   ///< straight from the cycle-level core: all identities apply
  kScaled,  ///< signature-scaled / externally assembled: rounding-safe only
};

class InvariantAuditor {
 public:
  /// A rule over one raw event batch.  Returns the violation detail, or
  /// nullopt when the identity holds.
  struct EventRule {
    std::string name;
    std::string paper_ref;  ///< which table/figure/section it encodes
    bool exact_only = false;
    std::function<std::optional<std::string>(const power2::EventCounts&)> fn;
  };

  /// A rule over one privilege mode's 64-bit counter totals.
  struct TotalsRule {
    std::string name;
    std::string paper_ref;
    std::function<std::optional<std::string>(const Totals64&)> fn;
  };

  /// Constructs an auditor preloaded with the paper's identity set.
  InvariantAuditor();

  /// Additional project-specific identities can be registered at runtime.
  void add_event_rule(EventRule rule);
  void add_totals_rule(TotalsRule rule);

  std::vector<Violation> audit_events(const power2::EventCounts& ev,
                                      AuditScope scope) const;
  std::vector<Violation> audit_totals(const Totals64& totals) const;

  const std::vector<EventRule>& event_rules() const { return event_rules_; }
  const std::vector<TotalsRule>& totals_rules() const {
    return totals_rules_;
  }

  /// Process-wide auditor with the paper's identities (what the audit
  /// macros below use).
  static const InvariantAuditor& paper();

 private:
  std::vector<EventRule> event_rules_;
  std::vector<TotalsRule> totals_rules_;
};

/// Aborts via check::fail listing every violation; no-op on an empty list.
/// `where` names the audit point (e.g. "power2::Power2Core::run").
void enforce(const std::vector<Violation>& violations, const char* where);

}  // namespace p2sim::check

// Audit hooks for hot paths: expand to nothing in Release builds so the
// audit (rule iteration, vector allocation) is never paid there.
#if P2SIM_CHECKS_ENABLED
#define P2SIM_AUDIT_EVENTS(ev, scope, where)                          \
  ::p2sim::check::enforce(                                            \
      ::p2sim::check::InvariantAuditor::paper().audit_events(         \
          (ev), ::p2sim::check::AuditScope::scope),                   \
      (where))
#define P2SIM_AUDIT_TOTALS(totals, where)                             \
  ::p2sim::check::enforce(                                            \
      ::p2sim::check::InvariantAuditor::paper().audit_totals(totals), \
      (where))
#else
#define P2SIM_AUDIT_EVENTS(ev, scope, where) ((void)0)
#define P2SIM_AUDIT_TOTALS(totals, where) ((void)0)
#endif
