#include "src/check/invariants.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace p2sim::check {
namespace {

using power2::EventCounts;

/// Formats "lhs_name=<v> vs rhs_name=<v>" detail strings.
std::string pair_detail(const char* a_name, std::uint64_t a,
                        const char* b_name, std::uint64_t b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 " vs %s=%" PRIu64, a_name, a,
                b_name, b);
  return buf;
}

/// Rule helper: require a <= b.
std::optional<std::string> require_le(const char* a_name, std::uint64_t a,
                                      const char* b_name, std::uint64_t b) {
  if (a <= b) return std::nullopt;
  return pair_detail(a_name, a, b_name, b);
}

std::uint64_t at(const Totals64& t, hpm::HpmCounter c) {
  return t[hpm::index_of(c)];
}

}  // namespace

InvariantAuditor::InvariantAuditor() {
  using Ev = const EventCounts&;

  // --- identities preserved by independent per-field rounding -----------

  add_event_rule(
      {"fma-add-half-folded",
       "section 5: the fma add half lands in fpop.fp_add, so each unit's "
       "add count dominates its fma count",
       /*exact_only=*/false, [](Ev ev) -> std::optional<std::string> {
         if (auto v = require_le("fp_fma0", ev.fp_fma0, "fp_add0", ev.fp_add0))
           return v;
         return require_le("fp_fma1", ev.fp_fma1, "fp_add1", ev.fp_add1);
       }});

  add_event_rule(
      {"fma-counts-twice-as-flops",
       "section 5 / Table 3: flops = add + mul + div + muladd, so every fma "
       "contributes two flops",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("2*fp_fma", 2 * ev.fp_fma(), "flops", ev.flops());
       }});

  add_event_rule(
      {"quad-counts-once",
       "section 5 / Table 2: a quad load/store is one FXU instruction "
       "moving two words (quad ops are a subset of memory ops)",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("quad_inst", ev.quad_inst, "memory_inst",
                           ev.memory_inst);
       }});

  add_event_rule(
      {"dcache-miss-bounded-by-references",
       "Table 4: user.dcache_mis counts FPU+FXU requests not in the "
       "D-cache, a subset of load/store traffic",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("dcache_miss", ev.dcache_miss, "memory_inst",
                           ev.memory_inst);
       }});

  add_event_rule(
      {"tlb-miss-bounded-by-references",
       "Table 4: TLB misses cannot exceed loads+stores",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("tlb_miss", ev.tlb_miss, "memory_inst",
                           ev.memory_inst);
       }});

  add_event_rule(
      {"reload-requires-miss",
       "section 2: a memory->D-cache transfer happens only on a miss "
       "(write-allocate D-cache)",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("dcache_reload", ev.dcache_reload, "dcache_miss",
                           ev.dcache_miss);
       }});

  add_event_rule(
      {"dirty-eviction-bound",
       "section 2: user.dcache_store fires on a modified-victim eviction, "
       "which only a reload can trigger (write-back D-cache)",
       /*exact_only=*/false, [](Ev ev) {
         return require_le("dcache_store", ev.dcache_store, "dcache_reload",
                           ev.dcache_reload);
       }});

  // --- identities over field sums: exact core batches only --------------

  add_event_rule(
      {"fma-counts-once-per-instruction",
       "section 5: each FPU op is one instruction; the fma multiply half is "
       "the muladd count itself, so add+mul+div <= instructions per unit",
       /*exact_only=*/true, [](Ev ev) -> std::optional<std::string> {
         if (auto v = require_le("fp_add0+fp_mul0+fp_div0",
                                 ev.fp_add0 + ev.fp_mul0 + ev.fp_div0,
                                 "fpu0_inst", ev.fpu0_inst))
           return v;
         return require_le("fp_add1+fp_mul1+fp_div1",
                           ev.fp_add1 + ev.fp_mul1 + ev.fp_div1, "fpu1_inst",
                           ev.fpu1_inst);
       }});

  add_event_rule(
      {"memory-ops-execute-on-fxu",
       "section 2: loads and stores issue on the fixed-point units",
       /*exact_only=*/true, [](Ev ev) {
         return require_le("memory_inst", ev.memory_inst, "fxu_inst",
                           ev.fxu_inst());
       }});

  add_event_rule(
      {"dispatch-covers-completion",
       "section 2: the in-order ICU dispatches every instruction that "
       "completes (dispatched >= completed)",
       /*exact_only=*/true, [](Ev ev) -> std::optional<std::string> {
         if (ev.dispatched_inst == 0) return std::nullopt;  // not recorded
         return require_le("instructions", ev.instructions(),
                           "dispatched_inst", ev.dispatched_inst);
       }});

  add_event_rule(
      {"stall-cycles-within-total",
       "section 5: miss-halt and TLB-refill cycles are a portion of the "
       "measured cycle count",
       /*exact_only=*/true, [](Ev ev) -> std::optional<std::string> {
         if (ev.cycles == 0) return std::nullopt;  // sub-batch, no timebase
         return require_le("stall_dcache+stall_tlb",
                           ev.stall_dcache + ev.stall_tlb, "cycles",
                           ev.cycles);
       }});

  // --- identities over 64-bit extended totals (per privilege mode) ------

  add_totals_rule({"totals-fma-add-half-folded",
                   "section 5: fpop.fp_add >= fpop.fp_muladd per FPU",
                   [](const Totals64& t) -> std::optional<std::string> {
                     if (auto v = require_le(
                             "fpop.fp_muladd[0]",
                             at(t, hpm::HpmCounter::kFpMulAdd0),
                             "fpop.fp_add[0]", at(t, hpm::HpmCounter::kFpAdd0)))
                       return v;
                     return require_le("fpop.fp_muladd[1]",
                                       at(t, hpm::HpmCounter::kFpMulAdd1),
                                       "fpop.fp_add[1]",
                                       at(t, hpm::HpmCounter::kFpAdd1));
                   }});

  add_totals_rule({"totals-dirty-eviction-bound",
                   "section 2: write-back evictions cannot outnumber reloads",
                   [](const Totals64& t) {
                     return require_le("user.dcache_store",
                                       at(t, hpm::HpmCounter::kDcacheStore),
                                       "user.dcache_reload",
                                       at(t, hpm::HpmCounter::kDcacheReload));
                   }});

  add_totals_rule(
      {"totals-tlb-miss-vs-fxu",
       "Table 4: TLB misses are a subset of FXU load/store traffic",
       [](const Totals64& t) {
         return require_le("user.tlb_mis", at(t, hpm::HpmCounter::kUserTlbMiss),
                           "user.fxu0+user.fxu1",
                           at(t, hpm::HpmCounter::kUserFxu0) +
                               at(t, hpm::HpmCounter::kUserFxu1));
       }});

  add_totals_rule(
      {"totals-dcache-miss-vs-fxu",
       "Table 4: D-cache misses are a subset of FXU load/store traffic",
       [](const Totals64& t) {
         return require_le(
             "user.dcache_mis", at(t, hpm::HpmCounter::kUserDcacheMiss),
             "user.fxu0+user.fxu1",
             at(t, hpm::HpmCounter::kUserFxu0) +
                 at(t, hpm::HpmCounter::kUserFxu1));
       }});
}

void InvariantAuditor::add_event_rule(EventRule rule) {
  event_rules_.push_back(std::move(rule));
}

void InvariantAuditor::add_totals_rule(TotalsRule rule) {
  totals_rules_.push_back(std::move(rule));
}

std::vector<Violation> InvariantAuditor::audit_events(
    const power2::EventCounts& ev, AuditScope scope) const {
  std::vector<Violation> out;
  for (const EventRule& r : event_rules_) {
    if (r.exact_only && scope != AuditScope::kExact) continue;
    if (auto detail = r.fn(ev)) {
      out.push_back({r.name, *std::move(detail)});
    }
  }
  return out;
}

std::vector<Violation> InvariantAuditor::audit_totals(
    const Totals64& totals) const {
  std::vector<Violation> out;
  for (const TotalsRule& r : totals_rules_) {
    if (auto detail = r.fn(totals)) {
      out.push_back({r.name, *std::move(detail)});
    }
  }
  return out;
}

const InvariantAuditor& InvariantAuditor::paper() {
  static const InvariantAuditor auditor;
  return auditor;
}

void enforce(const std::vector<Violation>& violations, const char* where) {
  if (violations.empty()) return;
  std::string context = where;
  for (const Violation& v : violations) {
    context += "\n    [";
    context += v.identity;
    context += "] ";
    context += v.detail;
  }
  fail("invariant", "counter identities hold", "src/check/invariants.cpp", 0,
       context);
}

}  // namespace p2sim::check
