// Abort-with-context checking macros — the enforcement half of the
// correctness-verification subsystem (see src/check/invariants.hpp for the
// counter identities themselves).
//
// The paper's credibility rests on 22 silently-wrapping 32-bit counters
// whose cross-counter identities must hold exactly; a simulator bug that
// breaks one of them produces plausible-looking but wrong tables.  These
// macros make such breakage loud in Debug/CI builds and free in Release:
//
//   P2SIM_INVARIANT(cond)            // a modelled hardware identity
//   P2SIM_INVARIANT(cond, context)   // ... with extra diagnostic detail
//   P2SIM_CHECK(cond)                // an internal sanity condition
//   P2SIM_CHECK(cond, context)
//
// `context` is any expression convertible to std::string; it is evaluated
// only on failure.  Both macros compile to nothing when
// P2SIM_CHECKS_ENABLED is 0 (the default whenever NDEBUG is defined, i.e.
// Release and RelWithDebInfo), so hot paths pay nothing in production.
// The build can force either state via -DP2SIM_CHECKS_ENABLED=0/1 (the
// `P2SIM_CHECKS` CMake option; the debug/asan/tsan presets force it on).
#pragma once

#include <string>

#if !defined(P2SIM_CHECKS_ENABLED)
#if defined(NDEBUG)
#define P2SIM_CHECKS_ENABLED 0
#else
#define P2SIM_CHECKS_ENABLED 1
#endif
#endif

namespace p2sim::check {

/// Prints a labelled "<kind> violated" report (expression, location,
/// context) to stderr and aborts.  `kind` is "invariant" or "check".
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& context);

/// True when the translation unit of the *caller of this header's macros*
/// was built with checks compiled in.  Tests use it to assert the build
/// mode they run under.
constexpr bool checks_enabled() noexcept { return P2SIM_CHECKS_ENABLED != 0; }

/// True when the p2sim *libraries* were built with checks compiled in.
/// Distinct from checks_enabled(): a test TU can force its own macros on
/// while linking against a Release library whose hooks compiled out.
bool library_checks_enabled() noexcept;

}  // namespace p2sim::check

#if P2SIM_CHECKS_ENABLED

#define P2SIM_CHECK_IMPL_(kind, cond, ...)                      \
  do {                                                          \
    if (!(cond)) {                                              \
      ::p2sim::check::fail(kind, #cond, __FILE__, __LINE__,     \
                           ::std::string{__VA_ARGS__});         \
    }                                                           \
  } while (false)

#define P2SIM_INVARIANT(cond, ...) \
  P2SIM_CHECK_IMPL_("invariant", cond, __VA_ARGS__)
#define P2SIM_CHECK(cond, ...) P2SIM_CHECK_IMPL_("check", cond, __VA_ARGS__)

#else  // !P2SIM_CHECKS_ENABLED

// The sizeof keeps the condition's operands "used" (no -Wunused noise)
// without evaluating anything at runtime.
#define P2SIM_INVARIANT(cond, ...) ((void)sizeof(!(cond)))
#define P2SIM_CHECK(cond, ...) ((void)sizeof(!(cond)))

#endif  // P2SIM_CHECKS_ENABLED
