// Concurrency & determinism annotations — the vocabulary tools/detlint.py
// audits statically (see DESIGN.md §10).
//
// The campaign's core guarantee — bit-identical outputs for every
// DriverConfig::threads value, with a lock-free hot path — used to be
// enforced only dynamically (fingerprint tests, the TSan CI job), which
// checks the runs we happen to exercise, not the code.  These macros put
// the concurrency contract *in the source*, where the static auditor can
// close the gap:
//
//   P2SIM_PAR_SAFE        on a function: callable from the parallel
//                         node-advance region.  The auditor requires every
//                         function transitively reachable from a parallel
//                         phase (per WorkloadDriver::kPhases) to carry it,
//                         and bans shared-stream RNG draws inside it.
//   P2SIM_PAR_SAFE_FILE   file-scope marker (written as a declaration,
//                         `P2SIM_PAR_SAFE_FILE;`): every function in the
//                         file is parallel-safe.  For leaf value-type
//                         headers where per-function annotation is noise.
//   P2SIM_SERIAL_ONLY     on a function: owns cross-node state; must never
//                         be reachable from a parallel phase.  The auditor
//                         fails if one leaks into the parallel closure.
//   P2SIM_GUARDED_BY(m)   after a data member: accessed only under mutex
//                         `m` (declared in the same class).  Cross-checked
//                         against tools/concurrency_manifest.json.
//   P2SIM_ORDERED_FOLD    on an unordered-container declaration: its
//                         iteration order is laundered into a deterministic
//                         order (sort / ordered key fold) before reaching
//                         any record file, table, or telemetry export.
//                         Unordered containers are banned without it.
//
// Every macro compiles to nothing (P2SIM_PAR_SAFE_FILE to a vacuous
// static_assert so the trailing `;` is legal at namespace scope), in every
// build type; tests/check/annotate_test.cpp pins that expansion.  They
// exist for tools/detlint.py and for the human reader — the compiler never
// sees them.
#pragma once

#define P2SIM_PAR_SAFE
#define P2SIM_SERIAL_ONLY
#define P2SIM_GUARDED_BY(m)
#define P2SIM_ORDERED_FOLD
#define P2SIM_PAR_SAFE_FILE static_assert(true, "par-safe file")
