#include "src/rs2hpm/profiler.hpp"

#include <cstdio>

#include "src/telemetry/clock.hpp"

namespace p2sim::rs2hpm {

ProgramProfiler::ProgramProfiler(const power2::CoreConfig& core_cfg,
                                 const hpm::MonitorConfig& mon_cfg)
    : core_(core_cfg), monitor_(mon_cfg) {
  ext_.attach(monitor_);
}

const SectionReport& ProgramProfiler::run_section(
    std::string name, const power2::KernelDesc& kernel,
    std::uint64_t measure_iters) {
  const ModeTotals before = ext_.totals();

  const power2::RunResult r = measure_iters > 0
                                  ? core_.run(kernel, measure_iters)
                                  : core_.run(kernel);
  // Feed the monitor in sub-wrap chunks, as the multipass library would.
  power2::EventCounts remaining = r.counts;
  const std::uint64_t max_chunk_cycles = 1ull << 31;
  while (remaining.cycles > 0) {
    if (remaining.cycles <= max_chunk_cycles) {
      monitor_.accumulate(remaining, hpm::PrivilegeMode::kUser);
      ext_.sample(monitor_);
      break;
    }
    // Large phases are split proportionally.
    const double frac = static_cast<double>(max_chunk_cycles) /
                        static_cast<double>(remaining.cycles);
    power2::EventCounts chunk;
    chunk.cycles = max_chunk_cycles;
    chunk.fxu0_inst = static_cast<std::uint64_t>(remaining.fxu0_inst * frac);
    chunk.fxu1_inst = static_cast<std::uint64_t>(remaining.fxu1_inst * frac);
    chunk.fp_add0 = static_cast<std::uint64_t>(remaining.fp_add0 * frac);
    chunk.fp_add1 = static_cast<std::uint64_t>(remaining.fp_add1 * frac);
    chunk.fp_mul0 = static_cast<std::uint64_t>(remaining.fp_mul0 * frac);
    chunk.fp_mul1 = static_cast<std::uint64_t>(remaining.fp_mul1 * frac);
    chunk.fp_fma0 = static_cast<std::uint64_t>(remaining.fp_fma0 * frac);
    chunk.fp_fma1 = static_cast<std::uint64_t>(remaining.fp_fma1 * frac);
    chunk.fpu0_inst = static_cast<std::uint64_t>(remaining.fpu0_inst * frac);
    chunk.fpu1_inst = static_cast<std::uint64_t>(remaining.fpu1_inst * frac);
    chunk.icu_type1 = static_cast<std::uint64_t>(remaining.icu_type1 * frac);
    chunk.icu_type2 = static_cast<std::uint64_t>(remaining.icu_type2 * frac);
    chunk.dcache_miss =
        static_cast<std::uint64_t>(remaining.dcache_miss * frac);
    chunk.tlb_miss = static_cast<std::uint64_t>(remaining.tlb_miss * frac);
    chunk.dcache_reload =
        static_cast<std::uint64_t>(remaining.dcache_reload * frac);
    chunk.dcache_store =
        static_cast<std::uint64_t>(remaining.dcache_store * frac);
    chunk.icache_reload =
        static_cast<std::uint64_t>(remaining.icache_reload * frac);

    monitor_.accumulate(chunk, hpm::PrivilegeMode::kUser);
    ext_.sample(monitor_);

    remaining.cycles -= chunk.cycles;
    remaining.fxu0_inst -= chunk.fxu0_inst;
    remaining.fxu1_inst -= chunk.fxu1_inst;
    remaining.fp_add0 -= chunk.fp_add0;
    remaining.fp_add1 -= chunk.fp_add1;
    remaining.fp_mul0 -= chunk.fp_mul0;
    remaining.fp_mul1 -= chunk.fp_mul1;
    remaining.fp_fma0 -= chunk.fp_fma0;
    remaining.fp_fma1 -= chunk.fp_fma1;
    remaining.fpu0_inst -= chunk.fpu0_inst;
    remaining.fpu1_inst -= chunk.fpu1_inst;
    remaining.icu_type1 -= chunk.icu_type1;
    remaining.icu_type2 -= chunk.icu_type2;
    remaining.dcache_miss -= chunk.dcache_miss;
    remaining.tlb_miss -= chunk.tlb_miss;
    remaining.dcache_reload -= chunk.dcache_reload;
    remaining.dcache_store -= chunk.dcache_store;
    remaining.icache_reload -= chunk.icache_reload;
  }

  SectionReport rep;
  rep.name = std::move(name);
  rep.counts = r.counts;
  rep.delta = ext_.totals().since(before);
  rep.seconds = telemetry::seconds_from_cycles(r.counts.cycles);
  rep.rates = derive_rates(rep.delta, rep.seconds, r.counts.quad_inst,
                           monitor_.config().selection);
  sections_.push_back(std::move(rep));
  return sections_.back();
}

SectionReport ProgramProfiler::total() const {
  SectionReport t;
  t.name = "TOTAL";
  for (const SectionReport& s : sections_) {
    t.counts += s.counts;
    t.delta += s.delta;
    t.seconds += s.seconds;
  }
  t.rates = derive_rates(t.delta, t.seconds, t.counts.quad_inst,
                         monitor_.config().selection);
  return t;
}

std::string ProgramProfiler::format() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-16s %9s %9s %9s %9s %9s %9s\n",
                "section", "sec", "Mflops", "Mips", "f/memref", "dc-miss%",
                "fma%");
  out += buf;
  auto line = [&](const SectionReport& s) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %9.3f %9.1f %9.1f %9.2f %8.2f%% %8.0f%%\n",
                  s.name.c_str(), s.seconds, s.rates.mflops_all,
                  s.rates.mips, s.rates.flops_per_memref,
                  100.0 * s.rates.cache_miss_ratio,
                  100.0 * s.rates.fma_flop_fraction);
    out += buf;
  };
  for (const SectionReport& s : sections_) line(s);
  if (!sections_.empty()) line(total());
  return out;
}

void ProgramProfiler::reset() {
  sections_.clear();
  core_.reset();
  monitor_.clear();
  ext_ = ExtendedCounters{};
  ext_.attach(monitor_);
}

}  // namespace p2sim::rs2hpm
