#include "src/rs2hpm/job_monitor.hpp"

#include <stdexcept>

#include "src/check/check.hpp"

namespace p2sim::rs2hpm {

void JobMonitor::prologue(std::int64_t job_id, double start_s,
                          std::span<const ModeTotals> node_totals,
                          std::span<const std::uint64_t> node_quads) {
  if (node_totals.size() != node_quads.size() || node_totals.empty()) {
    throw std::invalid_argument("prologue: bad node spans");
  }
  if (open_.contains(job_id)) {
    throw std::invalid_argument("prologue: job already open");
  }
  Open o;
  o.start_s = start_s;
  o.totals.assign(node_totals.begin(), node_totals.end());
  o.quads.assign(node_quads.begin(), node_quads.end());
  open_.emplace(job_id, std::move(o));
}

JobCounterReport JobMonitor::epilogue(
    std::int64_t job_id, double end_s,
    std::span<const ModeTotals> node_totals,
    std::span<const std::uint64_t> node_quads) {
  auto it = open_.find(job_id);
  if (it == open_.end()) {
    throw std::invalid_argument("epilogue: no prologue for job");
  }
  const Open& o = it->second;
  if (node_totals.size() != o.totals.size() ||
      node_quads.size() != o.quads.size()) {
    throw std::invalid_argument("epilogue: node count changed");
  }
  JobCounterReport rep;
  rep.job_id = job_id;
  rep.nodes = static_cast<int>(o.totals.size());
  rep.elapsed_s = end_s - o.start_s;
  P2SIM_CHECK(rep.elapsed_s >= 0.0,
              "epilogue cannot precede the job's prologue");
  for (std::size_t i = 0; i < o.totals.size(); ++i) {
    rep.delta += node_totals[i].since(o.totals[i]);
    P2SIM_CHECK(node_quads[i] >= o.quads[i],
                "quad diagnostic must be monotone over the job window");
    rep.quad_surplus += node_quads[i] - o.quads[i];
  }
  open_.erase(it);
  return rep;
}

}  // namespace p2sim::rs2hpm
