#include "src/rs2hpm/job_monitor.hpp"

#include <stdexcept>

#include "src/check/check.hpp"
#include "src/telemetry/session.hpp"

namespace p2sim::rs2hpm {
namespace {

/// Zero-duration marker span on the campaign timeline (prologue/epilogue
/// script firings are instantaneous at interval resolution).
void mark(const char* name, double sim_s, std::int64_t job_id) {
  auto span = telemetry::span("rs2hpm", name, sim_s);
  span.arg("job_id", static_cast<double>(job_id));
  span.close(sim_s);
}

}  // namespace

JobCounterReport JobCounterReport::incomplete(std::int64_t job_id, int nodes,
                                              double elapsed_s) {
  JobCounterReport rep;
  rep.job_id = job_id;
  rep.nodes = nodes;
  rep.elapsed_s = elapsed_s;
  rep.complete = false;
  return rep;
}

void JobMonitor::prologue(std::int64_t job_id, double start_s,
                          std::span<const ModeTotals> node_totals,
                          std::span<const std::uint64_t> node_quads) {
  if (node_totals.size() != node_quads.size() || node_totals.empty()) {
    throw std::invalid_argument("prologue: bad node spans");
  }
  if (open_.contains(job_id)) {
    throw std::invalid_argument("prologue: job already open");
  }
  Open o;
  o.start_s = start_s;
  o.totals.assign(node_totals.begin(), node_totals.end());
  o.quads.assign(node_quads.begin(), node_quads.end());
  open_.emplace(job_id, std::move(o));
  mark("job_prologue", start_s, job_id);
}

JobCounterReport JobMonitor::epilogue(
    std::int64_t job_id, double end_s,
    std::span<const ModeTotals> node_totals,
    std::span<const std::uint64_t> node_quads) {
  auto it = open_.find(job_id);
  if (it == open_.end()) {
    throw std::invalid_argument("epilogue: no prologue for job");
  }
  const Open& o = it->second;
  if (node_totals.size() != o.totals.size() ||
      node_quads.size() != o.quads.size()) {
    throw std::invalid_argument("epilogue: node count changed");
  }
  JobCounterReport rep;
  rep.job_id = job_id;
  rep.nodes = static_cast<int>(o.totals.size());
  rep.elapsed_s = end_s - o.start_s;
  P2SIM_CHECK(rep.elapsed_s >= 0.0,
              "epilogue cannot precede the job's prologue");
  for (std::size_t i = 0; i < o.totals.size(); ++i) {
    // Unconditional monotone guard: a node that rebooted mid-job restarts
    // its counters from zero, and subtracting the prologue baseline would
    // wrap the uint64 deltas.  Drop the node, mark the report incomplete.
    if (!node_totals[i].covers(o.totals[i]) || node_quads[i] < o.quads[i]) {
      ++rep.nodes_reset;
      rep.complete = false;
      continue;
    }
    rep.delta += node_totals[i].since(o.totals[i]);
    rep.quad_surplus += node_quads[i] - o.quads[i];
  }
  open_.erase(it);
  mark("job_epilogue", end_s, job_id);
  if (!rep.complete) {
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_jobmon_reports_incomplete_total",
                   "Epilogue reports degraded by a mid-job counter reset")
          .inc();
    }
  }
  return rep;
}

JobCounterReport JobMonitor::abandon(std::int64_t job_id, double end_s) {
  auto it = open_.find(job_id);
  if (it == open_.end()) {
    throw std::invalid_argument("abandon: no prologue for job");
  }
  JobCounterReport rep = JobCounterReport::incomplete(
      job_id, static_cast<int>(it->second.totals.size()),
      end_s - it->second.start_s);
  open_.erase(it);
  mark("job_abandoned", end_s, job_id);
  if (auto* tel = telemetry::current()) {
    tel->registry
        .counter("p2sim_jobmon_jobs_abandoned_total",
                 "Open jobs abandoned without a usable epilogue")
        .inc();
  }
  return rep;
}

void JobMonitor::save_ckpt(util::CkptWriter& w) const {
  w.put_u64(open_.size());
  for (const auto& [id, o] : open_) {
    w.put_i64(id);
    w.put_f64(o.start_s);
    w.put_u64(o.totals.size());
    for (const ModeTotals& t : o.totals) t.save_ckpt(w);
    for (std::uint64_t q : o.quads) w.put_u64(q);
  }
}

void JobMonitor::restore_ckpt(util::CkptReader& r) {
  open_.clear();
  std::uint64_t n = r.read_u64("jobmon.open_size");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t id = r.read_i64("jobmon.job_id");
    Open o;
    o.start_s = r.read_f64("jobmon.start_s");
    std::uint64_t nn = r.read_u64("jobmon.node_count");
    o.totals.resize(static_cast<std::size_t>(nn));
    for (ModeTotals& t : o.totals) t.restore_ckpt(r);
    o.quads.resize(static_cast<std::size_t>(nn));
    for (std::uint64_t& q : o.quads) q = r.read_u64("jobmon.quad");
    open_.emplace(id, std::move(o));
  }
}

}  // namespace p2sim::rs2hpm
