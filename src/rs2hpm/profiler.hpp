// Per-program profiling: the user-facing face of RS2HPM.
//
// Section 3: "For individual programs to be reported, users must place
// commands into their batch scripts or preface interactive sessions with
// the appropriate RS2HPM commands."  ProgramProfiler is that interface for
// simulated programs: each named section runs a kernel phase on a POWER2
// core under the monitor, snapshots the extended counters around it, and
// reports the section's counter delta and derived rates — so a "program"
// (initialization, solver sweeps, boundary conditions, output) can be
// decomposed the way a NAS user would have.
#pragma once

#include <string>
#include <vector>

#include "src/hpm/monitor.hpp"
#include "src/power2/core.hpp"
#include "src/rs2hpm/derived.hpp"
#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

struct SectionReport {
  std::string name;
  power2::EventCounts counts;  ///< microarchitectural truth for the phase
  ModeTotals delta;            ///< what the counters saw
  double seconds = 0.0;        ///< wall time at the 66.7 MHz clock
  DerivedRates rates;          ///< per-second rates over the phase

  double mflops() const { return rates.mflops_all; }
};

class ProgramProfiler {
 public:
  explicit ProgramProfiler(const power2::CoreConfig& core_cfg = {},
                           const hpm::MonitorConfig& mon_cfg = {});

  /// Runs one program phase: `measure_iters` overrides the kernel's own
  /// count when nonzero.  Cache/TLB state persists between sections, as it
  /// does between phases of a real program.
  const SectionReport& run_section(std::string name,
                                   const power2::KernelDesc& kernel,
                                   std::uint64_t measure_iters = 0);

  const std::vector<SectionReport>& sections() const { return sections_; }

  /// Whole-program totals across all sections so far.
  SectionReport total() const;

  /// Human-readable per-section table (the epilogue printout a user saw).
  std::string format() const;

  /// Drops recorded sections and resets the core's microarchitectural
  /// state (a fresh program).
  void reset();

 private:
  power2::Power2Core core_;
  hpm::PerformanceMonitor monitor_;
  ExtendedCounters ext_;
  std::vector<SectionReport> sections_;
};

}  // namespace p2sim::rs2hpm
