// Counter snapshots and wrap correction — the core of Maki's RS2HPM library.
//
// The physical counters are 32-bit and wrap silently; at 66.7 MHz the cycle
// counter wraps every ~64 seconds.  The library therefore samples each bank
// on a period comfortably below the fastest wrap ("multipass sampling") and
// extends the values to 64 bits by accumulating wrap-corrected deltas.
// A single missed period makes totals under-count by a multiple of 2^32 —
// the classic failure mode this module's tests pin down.
#pragma once

#include <array>
#include <cstdint>

#include "src/check/annotate.hpp"
#include "src/hpm/monitor.hpp"

namespace p2sim::rs2hpm {

/// 64-bit totals for the 22 counters in one privilege mode.
using CounterTotals = std::array<std::uint64_t, hpm::kNumCounters>;

/// 64-bit totals for both modes.
struct ModeTotals {
  CounterTotals user{};
  CounterTotals system{};

  ModeTotals& operator+=(const ModeTotals& o);
  friend ModeTotals operator+(ModeTotals a, const ModeTotals& b) {
    a += b;
    return a;
  }
  /// Per-counter difference (this - earlier); requires monotone inputs.
  /// Pure value arithmetic: safe inside the parallel region on lane-local
  /// snapshots.
  P2SIM_PAR_SAFE ModeTotals since(const ModeTotals& earlier) const;

  /// True when every counter in both modes is >= its value in `earlier` —
  /// the monotonicity precondition of since().  A false return means the
  /// source counters were reset between the snapshots (node reboot): the
  /// consumer must re-prime its baseline, never subtract.
  P2SIM_PAR_SAFE bool covers(const ModeTotals& earlier) const;

  std::uint64_t user_at(hpm::HpmCounter c) const {
    return user[hpm::index_of(c)];
  }
  std::uint64_t system_at(hpm::HpmCounter c) const {
    return system[hpm::index_of(c)];
  }
  /// user + system for a counter.
  std::uint64_t total_at(hpm::HpmCounter c) const {
    return user_at(c) + system_at(c);
  }

  bool operator==(const ModeTotals&) const = default;

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    for (std::uint64_t v : user) w.put_u64(v);
    for (std::uint64_t v : system) w.put_u64(v);
  }
  void restore_ckpt(util::CkptReader& r) {
    for (std::uint64_t& v : user) v = r.read_u64("mode_totals.user");
    for (std::uint64_t& v : system) v = r.read_u64("mode_totals.system");
  }
};

/// Wrap-corrected 32-bit delta: (now - prev) mod 2^32.  Correct as long as
/// fewer than 2^32 events occurred between the samples.
P2SIM_PAR_SAFE constexpr std::uint64_t wrap_delta(std::uint32_t prev,
                                                  std::uint32_t now) {
  return static_cast<std::uint32_t>(now - prev);
}

/// Maintains 64-bit extended totals over a wrapping PerformanceMonitor by
/// periodic sampling.  sample() must be called at least once per counter
/// wrap period; the SP2 deployment sampled far more often than the 64 s
/// cycle-counter wrap.
class ExtendedCounters {
 public:
  /// Captures the monitor's current raw values as the baseline.
  P2SIM_PAR_SAFE void attach(const hpm::PerformanceMonitor& mon);

  /// Folds the events since the previous sample into the 64-bit totals.
  P2SIM_PAR_SAFE void sample(const hpm::PerformanceMonitor& mon);

  /// Batched accrual — the closed-form fast path.  The caller has just
  /// folded exactly `user_adds`/`system_adds` into the monitor's wrapping
  /// banks (hpm::PerformanceMonitor::accumulate_adds), possibly spanning
  /// many wraps at once, and hands over the 64-bit truth.  Equivalent to
  /// interleaving sub-wrap accumulate()/sample() pairs: the totals gain the
  /// exact amounts and the sampling baseline re-anchors at the registers'
  /// current raw values.  Requires a prior attach().
  P2SIM_PAR_SAFE void accrue(const hpm::PerformanceMonitor& mon,
                             const hpm::CounterAdds& user_adds,
                             const hpm::CounterAdds& system_adds);

  P2SIM_PAR_SAFE const ModeTotals& totals() const { return totals_; }

  /// Checkpoint support: sampling baselines, anchors and 64-bit totals all
  /// round-trip so wrap-consistency holds across a resume.
  void save_ckpt(util::CkptWriter& w) const {
    for (std::uint32_t v : last_user_) w.put_u32(v);
    for (std::uint32_t v : last_system_) w.put_u32(v);
    for (std::uint32_t v : base_user_) w.put_u32(v);
    for (std::uint32_t v : base_system_) w.put_u32(v);
    totals_.save_ckpt(w);
    w.put_bool(attached_);
  }
  void restore_ckpt(util::CkptReader& r) {
    for (std::uint32_t& v : last_user_) v = r.read_u32("ext.last_user");
    for (std::uint32_t& v : last_system_) v = r.read_u32("ext.last_system");
    for (std::uint32_t& v : base_user_) v = r.read_u32("ext.base_user");
    for (std::uint32_t& v : base_system_) v = r.read_u32("ext.base_system");
    totals_.restore_ckpt(r);
    attached_ = r.read_bool("ext.attached");
  }

  void reset_totals() {
    totals_ = ModeTotals{};
    // Re-anchor the wrap-consistency baseline: totals restart from zero at
    // the current raw counter values.
    base_user_ = last_user_;
    base_system_ = last_system_;
  }

 private:
  /// Debug-build audit: (baseline + extended total) mod 2^32 must equal
  /// each raw 32-bit register — the wrap-consistency identity between
  /// hpm::CounterBank and this extension layer.  Compiled out in Release.
  P2SIM_PAR_SAFE void check_wrap_consistency(
      const hpm::PerformanceMonitor& mon) const;

  std::array<std::uint32_t, hpm::kNumCounters> last_user_{};
  std::array<std::uint32_t, hpm::kNumCounters> last_system_{};
  // Raw values at attach (or last reset_totals): the anchor that makes the
  // 64-bit totals and the wrapping registers mutually checkable.
  std::array<std::uint32_t, hpm::kNumCounters> base_user_{};
  std::array<std::uint32_t, hpm::kNumCounters> base_system_{};
  ModeTotals totals_;
  bool attached_ = false;
};

}  // namespace p2sim::rs2hpm
