// Per-job monitoring (section 3, "Batch job data collection"; Saphir 1996).
//
// PBS runs a prologue script before each job and an epilogue after it; the
// scripts know which nodes the job holds and snapshot their counters at both
// ends.  The difference, divided by the job's wall time, is the job's
// counter report — the database behind Figures 2, 3 and 4.
//
// In production both scripts can fail: the prologue rsh times out, a node
// crashes mid-job (its counters restart from zero), or the job is killed
// and its epilogue never fires.  Every such path produces an explicitly
// *incomplete* report (complete == false, deltas only over the nodes whose
// counters stayed monotone) instead of aborting or wrapping uint64 deltas;
// the accounting layer excludes incomplete reports from analysis.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/rs2hpm/derived.hpp"
#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

/// What the epilogue writes "to a file for later processing".
struct JobCounterReport {
  std::int64_t job_id = 0;
  int nodes = 0;
  double elapsed_s = 0.0;
  ModeTotals delta;               ///< summed over the job's monotone nodes
  std::uint64_t quad_surplus = 0;

  /// False when the measurement window is broken: lost prologue/epilogue,
  /// or a counter reset on >= 1 node mid-job.  Incomplete reports carry
  /// whatever facts survive (id, nodes, elapsed time, partial deltas) but
  /// are excluded from rate analysis.
  bool complete = true;
  /// Nodes whose counters went backwards over the job window (rebooted);
  /// their contribution is dropped, never wrapped.
  int nodes_reset = 0;

  /// Whole-job rates (per node: divide by `nodes`).
  DerivedRates rates() const {
    return derive_rates(delta, elapsed_s, quad_surplus);
  }
  /// Job Mflops aggregated over all its nodes (Figure 4's y-axis).
  double job_mflops() const { return rates().mflops_all; }
  /// Mflops per node (Figure 3's y-axis).
  double mflops_per_node() const {
    return nodes > 0 ? job_mflops() / nodes : 0.0;
  }

  /// A report for a job whose measurement never happened (lost prologue,
  /// or killed before any snapshot): zero deltas, complete == false.
  static JobCounterReport incomplete(std::int64_t job_id, int nodes,
                                     double elapsed_s);

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(job_id);
    w.put_i32(nodes);
    w.put_f64(elapsed_s);
    delta.save_ckpt(w);
    w.put_u64(quad_surplus);
    w.put_bool(complete);
    w.put_i32(nodes_reset);
  }
  void restore_ckpt(util::CkptReader& r) {
    job_id = r.read_i64("job_report.job_id");
    nodes = r.read_i32("job_report.nodes");
    elapsed_s = r.read_f64("job_report.elapsed_s");
    delta.restore_ckpt(r);
    quad_surplus = r.read_u64("job_report.quad_surplus");
    complete = r.read_bool("job_report.complete");
    nodes_reset = r.read_i32("job_report.nodes_reset");
  }
};

class JobMonitor {
 public:
  /// Prologue: records each held node's extended totals at job start.
  void prologue(std::int64_t job_id, double start_s,
                std::span<const ModeTotals> node_totals,
                std::span<const std::uint64_t> node_quads);

  /// Epilogue: forms the per-node deltas and returns the report.  The job
  /// must have an outstanding prologue; spans must match its node count.
  /// Nodes whose counters are non-monotone over the window (reset by a
  /// reboot) are dropped from the delta and the report marked incomplete.
  JobCounterReport epilogue(std::int64_t job_id, double end_s,
                            std::span<const ModeTotals> node_totals,
                            std::span<const std::uint64_t> node_quads);

  /// The epilogue never ran (job killed, script lost): closes the open
  /// prologue and returns an explicitly incomplete report with no deltas.
  JobCounterReport abandon(std::int64_t job_id, double end_s);

  bool pending(std::int64_t job_id) const {
    return open_.contains(job_id);
  }
  std::size_t pending_count() const { return open_.size(); }

  /// Checkpoint support: every open prologue window round-trips so the
  /// matching epilogue forms the same deltas after a resume.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  struct Open {
    double start_s = 0.0;
    std::vector<ModeTotals> totals;
    std::vector<std::uint64_t> quads;
  };
  std::map<std::int64_t, Open> open_;
};

}  // namespace p2sim::rs2hpm
