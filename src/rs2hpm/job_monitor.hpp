// Per-job monitoring (section 3, "Batch job data collection"; Saphir 1996).
//
// PBS runs a prologue script before each job and an epilogue after it; the
// scripts know which nodes the job holds and snapshot their counters at both
// ends.  The difference, divided by the job's wall time, is the job's
// counter report — the database behind Figures 2, 3 and 4.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/rs2hpm/derived.hpp"
#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

/// What the epilogue writes "to a file for later processing".
struct JobCounterReport {
  std::int64_t job_id = 0;
  int nodes = 0;
  double elapsed_s = 0.0;
  ModeTotals delta;               ///< summed over the job's nodes
  std::uint64_t quad_surplus = 0;

  /// Whole-job rates (per node: divide by `nodes`).
  DerivedRates rates() const {
    return derive_rates(delta, elapsed_s, quad_surplus);
  }
  /// Job Mflops aggregated over all its nodes (Figure 4's y-axis).
  double job_mflops() const { return rates().mflops_all; }
  /// Mflops per node (Figure 3's y-axis).
  double mflops_per_node() const {
    return nodes > 0 ? job_mflops() / nodes : 0.0;
  }
};

class JobMonitor {
 public:
  /// Prologue: records each held node's extended totals at job start.
  void prologue(std::int64_t job_id, double start_s,
                std::span<const ModeTotals> node_totals,
                std::span<const std::uint64_t> node_quads);

  /// Epilogue: forms the per-node deltas and returns the report.  The job
  /// must have an outstanding prologue; spans must match its node count.
  JobCounterReport epilogue(std::int64_t job_id, double end_s,
                            std::span<const ModeTotals> node_totals,
                            std::span<const std::uint64_t> node_quads);

  bool pending(std::int64_t job_id) const {
    return open_.contains(job_id);
  }
  std::size_t pending_count() const { return open_.size(); }

 private:
  struct Open {
    double start_s = 0.0;
    std::vector<ModeTotals> totals;
    std::vector<std::uint64_t> quads;
  };
  std::map<std::int64_t, Open> open_;
};

}  // namespace p2sim::rs2hpm
