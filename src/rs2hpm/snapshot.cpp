#include "src/rs2hpm/snapshot.hpp"

#include "src/check/check.hpp"
#include "src/check/invariants.hpp"

namespace p2sim::rs2hpm {

ModeTotals& ModeTotals::operator+=(const ModeTotals& o) {
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    user[i] += o.user[i];
    system[i] += o.system[i];
  }
  return *this;
}

ModeTotals ModeTotals::since(const ModeTotals& earlier) const {
  ModeTotals d;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    // The documented precondition, enforced in Debug: extended totals are
    // monotone, so a negative delta means a caller mixed up snapshot order
    // or reset totals mid-window (the 64-bit analogue of a missed wrap).
    P2SIM_INVARIANT(user[i] >= earlier.user[i],
                    std::string("monotone user totals for ") +
                        std::string(hpm::counter_info(
                                        static_cast<hpm::HpmCounter>(i))
                                        .label));
    P2SIM_INVARIANT(system[i] >= earlier.system[i],
                    std::string("monotone system totals for ") +
                        std::string(hpm::counter_info(
                                        static_cast<hpm::HpmCounter>(i))
                                        .label));
    d.user[i] = user[i] - earlier.user[i];
    d.system[i] = system[i] - earlier.system[i];
  }
  return d;
}

bool ModeTotals::covers(const ModeTotals& earlier) const {
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    if (user[i] < earlier.user[i] || system[i] < earlier.system[i]) {
      return false;
    }
  }
  return true;
}

void ExtendedCounters::attach(const hpm::PerformanceMonitor& mon) {
  last_user_ = mon.bank(hpm::PrivilegeMode::kUser).raw();
  last_system_ = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  base_user_ = last_user_;
  base_system_ = last_system_;
  attached_ = true;
}

void ExtendedCounters::sample(const hpm::PerformanceMonitor& mon) {
  if (!attached_) {
    attach(mon);
    return;
  }
  const auto& u = mon.bank(hpm::PrivilegeMode::kUser).raw();
  const auto& s = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    totals_.user[i] += wrap_delta(last_user_[i], u[i]);
    totals_.system[i] += wrap_delta(last_system_[i], s[i]);
    last_user_[i] = u[i];
    last_system_[i] = s[i];
  }
#if P2SIM_CHECKS_ENABLED
  check_wrap_consistency(mon);
#endif
}

void ExtendedCounters::accrue(const hpm::PerformanceMonitor& mon,
                              const hpm::CounterAdds& user_adds,
                              const hpm::CounterAdds& system_adds) {
  P2SIM_CHECK(attached_, "ExtendedCounters::accrue requires attach()");
  const auto& u = mon.bank(hpm::PrivilegeMode::kUser).raw();
  const auto& s = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    totals_.user[i] += user_adds[i];
    totals_.system[i] += system_adds[i];
    last_user_[i] = u[i];
    last_system_[i] = s[i];
  }
  // The wrap-consistency identity catches a caller whose folded register
  // increments disagree with the 64-bit amounts handed to us.
#if P2SIM_CHECKS_ENABLED
  check_wrap_consistency(mon);
#endif
}

void ExtendedCounters::check_wrap_consistency(
    const hpm::PerformanceMonitor& mon) const {
#if P2SIM_CHECKS_ENABLED
  const auto& u = mon.bank(hpm::PrivilegeMode::kUser).raw();
  const auto& s = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    // The 64-bit extension can miss whole wraps (the classic failure the
    // paper's sampling rule avoids), but never drift mod 2^32: whatever it
    // accumulated must agree with the raw register modulo the wrap.
    P2SIM_INVARIANT(
        static_cast<std::uint32_t>(base_user_[i] + totals_.user[i]) == u[i],
        std::string("user-mode wrap consistency for ") +
            std::string(hpm::counter_info(
                            static_cast<hpm::HpmCounter>(i)).label));
    P2SIM_INVARIANT(
        static_cast<std::uint32_t>(base_system_[i] + totals_.system[i]) ==
            s[i],
        std::string("system-mode wrap consistency for ") +
            std::string(hpm::counter_info(
                            static_cast<hpm::HpmCounter>(i)).label));
  }
  // The audited identities must hold on the monotone 64-bit totals too.
  P2SIM_AUDIT_TOTALS(totals_.user, "rs2hpm::ExtendedCounters::sample(user)");
  P2SIM_AUDIT_TOTALS(totals_.system,
                     "rs2hpm::ExtendedCounters::sample(system)");
#else
  (void)mon;
#endif
}

}  // namespace p2sim::rs2hpm
