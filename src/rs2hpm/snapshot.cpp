#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

ModeTotals& ModeTotals::operator+=(const ModeTotals& o) {
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    user[i] += o.user[i];
    system[i] += o.system[i];
  }
  return *this;
}

ModeTotals ModeTotals::since(const ModeTotals& earlier) const {
  ModeTotals d;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    d.user[i] = user[i] - earlier.user[i];
    d.system[i] = system[i] - earlier.system[i];
  }
  return d;
}

void ExtendedCounters::attach(const hpm::PerformanceMonitor& mon) {
  last_user_ = mon.bank(hpm::PrivilegeMode::kUser).raw();
  last_system_ = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  attached_ = true;
}

void ExtendedCounters::sample(const hpm::PerformanceMonitor& mon) {
  if (!attached_) {
    attach(mon);
    return;
  }
  const auto& u = mon.bank(hpm::PrivilegeMode::kUser).raw();
  const auto& s = mon.bank(hpm::PrivilegeMode::kSystem).raw();
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    totals_.user[i] += wrap_delta(last_user_[i], u[i]);
    totals_.system[i] += wrap_delta(last_system_[i], s[i]);
    last_user_[i] = u[i];
    last_system_[i] = s[i];
  }
}

}  // namespace p2sim::rs2hpm
