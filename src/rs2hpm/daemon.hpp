// System-wide data collection (section 3, "System-wide data collection").
//
// On the real machine a cron script ran every 15 minutes, pulled the
// extended counter totals from the RS2HPM daemon on every node available
// for user jobs, and appended them to a file for later analysis.  This
// class is that pipeline: it receives each node's 64-bit totals once per
// interval, forms wrap-free deltas per node, and stores one aggregated
// record per interval.  The daemon samples whether or not user processes
// are executing — idle nodes simply contribute near-zero deltas.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

/// One 15-minute system-wide sample.
struct IntervalRecord {
  std::int64_t interval = 0;     ///< global 15-minute interval index
  ModeTotals delta;              ///< counter deltas summed over all nodes
  std::uint64_t quad_surplus = 0;///< diagnostic: quad memory instructions
  int nodes_sampled = 0;
  int busy_nodes = 0;            ///< nodes servicing PBS jobs (utilization)
};

class SamplingDaemon {
 public:
  explicit SamplingDaemon(std::size_t num_nodes);

  /// Ingests one interval: `node_totals[i]` is node i's monotone 64-bit
  /// extended totals at the end of the interval, `node_quads[i]` its
  /// cumulative quad-instruction diagnostic.  `busy_nodes` comes from the
  /// batch system.  Spans must cover all nodes.
  void collect(std::int64_t interval,
               std::span<const ModeTotals> node_totals,
               std::span<const std::uint64_t> node_quads, int busy_nodes);

  const std::vector<IntervalRecord>& records() const { return records_; }
  std::size_t num_nodes() const { return prev_.size(); }

 private:
  std::vector<ModeTotals> prev_;
  std::vector<std::uint64_t> prev_quads_;
  std::vector<IntervalRecord> records_;
  bool primed_ = false;
};

}  // namespace p2sim::rs2hpm
