// System-wide data collection (section 3, "System-wide data collection").
//
// On the real machine a cron script ran every 15 minutes, pulled the
// extended counter totals from the RS2HPM daemon on every node available
// for user jobs, and appended them to a file for later analysis.  This
// class is that pipeline: it receives each node's 64-bit totals once per
// interval, forms wrap-free deltas per node, and stores one aggregated
// record per interval.  The daemon samples whether or not user processes
// are executing — idle nodes simply contribute near-zero deltas.
//
// Production hardening: over nine months the collection is lossy.  Nodes
// reboot (their counters restart from zero) and single-node fetches time
// out.  The daemon therefore primes each node independently, detects
// non-monotone totals and *re-primes* that node rather than forming a
// wrapped uint64 delta, and records per-interval coverage (nodes_sampled
// vs nodes_expected) so the analysis can weight or discard thin samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

/// One 15-minute system-wide sample.
struct IntervalRecord {
  std::int64_t interval = 0;     ///< global 15-minute interval index
  ModeTotals delta;              ///< counter deltas summed over sampled nodes
  std::uint64_t quad_surplus = 0;///< diagnostic: quad memory instructions
  int nodes_sampled = 0;         ///< nodes that contributed a clean delta
  int nodes_expected = 0;        ///< nodes the daemon should have reached
  int nodes_reprimed = 0;        ///< counter reset detected; baseline redone
  int busy_nodes = 0;            ///< nodes servicing PBS jobs (utilization)

  /// Fraction of the expected node-samples actually collected.
  double coverage() const {
    return nodes_expected > 0
               ? static_cast<double>(nodes_sampled) / nodes_expected
               : 1.0;
  }

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(interval);
    delta.save_ckpt(w);
    w.put_u64(quad_surplus);
    w.put_i32(nodes_sampled);
    w.put_i32(nodes_expected);
    w.put_i32(nodes_reprimed);
    w.put_i32(busy_nodes);
  }
  void restore_ckpt(util::CkptReader& r) {
    interval = r.read_i64("record.interval");
    delta.restore_ckpt(r);
    quad_surplus = r.read_u64("record.quad_surplus");
    nodes_sampled = r.read_i32("record.nodes_sampled");
    nodes_expected = r.read_i32("record.nodes_expected");
    nodes_reprimed = r.read_i32("record.nodes_reprimed");
    busy_nodes = r.read_i32("record.busy_nodes");
  }
};

class SamplingDaemon {
 public:
  explicit SamplingDaemon(std::size_t num_nodes);

  /// Ingests one interval: `node_totals[i]` is node i's monotone 64-bit
  /// extended totals at the end of the interval, `node_quads[i]` its
  /// cumulative quad-instruction diagnostic.  `busy_nodes` comes from the
  /// batch system.  Spans must cover all nodes.  Equivalent to the lossy
  /// overload with every node reachable.
  P2SIM_SERIAL_ONLY void collect(std::int64_t interval,
                                 std::span<const ModeTotals> node_totals,
                                 std::span<const std::uint64_t> node_quads,
                                 int busy_nodes);

  /// Lossy collection: `reachable[i] == 0` means node i could not be
  /// sampled this interval (down, or the fetch was dropped).  Unreachable
  /// nodes keep their previous baseline — their next clean delta simply
  /// spans the gap.  A node whose totals went backwards (counter reset)
  /// is re-primed at the new values and contributes nothing this interval.
  P2SIM_SERIAL_ONLY void collect(std::int64_t interval,
                                 std::span<const ModeTotals> node_totals,
                                 std::span<const std::uint64_t> node_quads,
                                 std::span<const std::uint8_t> reachable,
                                 int busy_nodes);

  /// Adopts one already-merged interval record: the accounting tail of
  /// collect(), split out for callers that form per-node deltas themselves
  /// (the campaign driver's lane pipeline probes nodes inside the parallel
  /// region and tree-merges the samples before handing the result here).
  /// `unreachable` counts nodes that could not be sampled (down or dropped
  /// in flight), `newly_primed` first-contact nodes, and `any_primed`
  /// gates record emission exactly as collect() does — a fleet with no
  /// baseline yet emits nothing.  Emits the same telemetry as collect().
  P2SIM_SERIAL_ONLY void ingest(const IntervalRecord& rec, int unreachable,
                                int newly_primed, bool any_primed);

  const std::vector<IntervalRecord>& records() const { return records_; }
  std::size_t num_nodes() const { return prev_.size(); }

  /// Lifetime counts of the degradations the daemon absorbed.
  std::int64_t total_reprimes() const { return total_reprimes_; }
  std::int64_t total_unreachable() const { return total_unreachable_; }

  /// Checkpoint support: per-node baselines, primed flags, the collected
  /// record stream and the lifetime degradation tallies.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  std::vector<ModeTotals> prev_;
  std::vector<std::uint64_t> prev_quads_;
  std::vector<std::uint8_t> primed_;
  std::vector<IntervalRecord> records_;
  std::int64_t total_reprimes_ = 0;
  std::int64_t total_unreachable_ = 0;
};

}  // namespace p2sim::rs2hpm
