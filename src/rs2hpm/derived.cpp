#include "src/rs2hpm/derived.hpp"

#include <cmath>

#include "src/check/invariants.hpp"
#include "src/telemetry/clock.hpp"

namespace p2sim::rs2hpm {

DerivedRates derive_rates(const ModeTotals& delta, double elapsed_s,
                          std::uint64_t quad_surplus,
                          hpm::CounterSelection selection) {
  using hpm::HpmCounter;
  P2SIM_CHECK(std::isfinite(elapsed_s),
              "derive_rates needs a finite elapsed time");
  // The counter delta feeding a derivation must itself obey the Table 1
  // identities — a wrap-accounting bug upstream shows up here first.
  P2SIM_AUDIT_TOTALS(delta.user, "rs2hpm::derive_rates(user delta)");
  P2SIM_AUDIT_TOTALS(delta.system, "rs2hpm::derive_rates(system delta)");
  DerivedRates r;
  r.elapsed_s = elapsed_s;
  if (elapsed_s <= 0.0) return r;
  const double mps = 1.0 / (elapsed_s * 1e6);
  auto u = [&](HpmCounter c) {
    return static_cast<double>(delta.user_at(c));
  };

  const bool wait_states = selection == hpm::CounterSelection::kWaitStates;
  if (wait_states) {
    // Under the recommended selection the divide slots carry wait cycles.
    const double node_cycles = telemetry::cycles_from_seconds(elapsed_s);
    r.comm_wait_fraction = u(hpm::kCommWaitSlot) / node_cycles;
    r.io_wait_fraction = u(hpm::kIoWaitSlot) / node_cycles;
  }

  const double add = u(HpmCounter::kFpAdd0) + u(HpmCounter::kFpAdd1);
  const double mul = u(HpmCounter::kFpMul0) + u(HpmCounter::kFpMul1);
  const double div =
      wait_states ? 0.0
                  : u(HpmCounter::kFpDiv0) + u(HpmCounter::kFpDiv1);
  const double fma = u(HpmCounter::kFpMulAdd0) + u(HpmCounter::kFpMulAdd1);
  const double flops = add + mul + div + fma;

  r.mflops_add = add * mps;
  r.mflops_mul = mul * mps;
  r.mflops_div = div * mps;
  r.mflops_fma = fma * mps;
  r.mflops_all = flops * mps;

  const double fpu0 = u(HpmCounter::kUserFpu0);
  const double fpu1 = u(HpmCounter::kUserFpu1);
  const double fxu0 = u(HpmCounter::kUserFxu0);
  const double fxu1 = u(HpmCounter::kUserFxu1);
  const double icu =
      u(HpmCounter::kUserIcu0) + u(HpmCounter::kUserIcu1);

  r.mips_fpu0 = fpu0 * mps;
  r.mips_fpu1 = fpu1 * mps;
  r.mips_fpu = (fpu0 + fpu1) * mps;
  r.mips_fxu0 = fxu0 * mps;
  r.mips_fxu1 = fxu1 * mps;
  r.mips_fxu = (fxu0 + fxu1) * mps;
  r.mips_icu = icu * mps;
  r.mips = r.mips_fpu + r.mips_fxu + r.mips_icu;
  r.mops = r.mips + static_cast<double>(quad_surplus) * mps;

  r.dcache_miss_mps = u(HpmCounter::kUserDcacheMiss) * mps;
  r.tlb_miss_mps = u(HpmCounter::kUserTlbMiss) * mps;
  r.icache_miss_mps = u(HpmCounter::kIcacheReload) * mps;
  r.dma_read_mps = u(HpmCounter::kDmaRead) * mps;
  r.dma_write_mps = u(HpmCounter::kDmaWrite) * mps;

  const double fxu = fxu0 + fxu1;
  if (fxu > 0.0) {
    // Section 5: the FXU instruction sum approximates memory instructions
    // and yields a lower bound on the miss ratios.
    r.cache_miss_ratio = u(HpmCounter::kUserDcacheMiss) / fxu;
    r.tlb_miss_ratio = u(HpmCounter::kUserTlbMiss) / fxu;
    r.flops_per_memref = flops / fxu;
  }
  // The text's "the fma instruction produces about 54% of the floating-
  // point operations" counts both halves of each fma (its add lives in the
  // add counter), hence the factor of two.
  if (flops > 0.0) r.fma_flop_fraction = 2.0 * fma / flops;
  if (fpu1 > 0.0) r.fpu0_fpu1_ratio = fpu0 / fpu1;
  if (fxu0 > 0.0) r.fxu1_fxu0_ratio = fxu1 / fxu0;

  const double sys_fxu =
      static_cast<double>(delta.system_at(hpm::HpmCounter::kUserFxu0) +
                          delta.system_at(hpm::HpmCounter::kUserFxu1));
  if (fxu > 0.0) r.system_user_fxu_ratio = sys_fxu / fxu;
  return r;
}

}  // namespace p2sim::rs2hpm
