#include "src/rs2hpm/daemon.hpp"

#include <stdexcept>

#include "src/check/check.hpp"

namespace p2sim::rs2hpm {

SamplingDaemon::SamplingDaemon(std::size_t num_nodes)
    : prev_(num_nodes), prev_quads_(num_nodes, 0) {
  if (num_nodes == 0) throw std::invalid_argument("daemon needs >= 1 node");
}

void SamplingDaemon::collect(std::int64_t interval,
                             std::span<const ModeTotals> node_totals,
                             std::span<const std::uint64_t> node_quads,
                             int busy_nodes) {
  if (node_totals.size() != prev_.size() ||
      node_quads.size() != prev_.size()) {
    throw std::invalid_argument("collect: span size != node count");
  }
  IntervalRecord rec;
  rec.interval = interval;
  rec.nodes_sampled = static_cast<int>(prev_.size());
  rec.busy_nodes = busy_nodes;
  if (primed_) {
    for (std::size_t i = 0; i < prev_.size(); ++i) {
      rec.delta += node_totals[i].since(prev_[i]);
      P2SIM_CHECK(node_quads[i] >= prev_quads_[i],
                  "quad diagnostic must be monotone per node");
      rec.quad_surplus += node_quads[i] - prev_quads_[i];
    }
    records_.push_back(rec);
  }
  for (std::size_t i = 0; i < prev_.size(); ++i) {
    prev_[i] = node_totals[i];
    prev_quads_[i] = node_quads[i];
  }
  primed_ = true;
}

}  // namespace p2sim::rs2hpm
