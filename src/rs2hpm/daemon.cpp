#include "src/rs2hpm/daemon.hpp"

#include <stdexcept>

#include "src/check/check.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/sim_time.hpp"

namespace p2sim::rs2hpm {

SamplingDaemon::SamplingDaemon(std::size_t num_nodes)
    : prev_(num_nodes), prev_quads_(num_nodes, 0), primed_(num_nodes, 0) {
  if (num_nodes == 0) throw std::invalid_argument("daemon needs >= 1 node");
}

void SamplingDaemon::collect(std::int64_t interval,
                             std::span<const ModeTotals> node_totals,
                             std::span<const std::uint64_t> node_quads,
                             int busy_nodes) {
  const std::vector<std::uint8_t> all(prev_.size(), 1);
  collect(interval, node_totals, node_quads, all, busy_nodes);
}

void SamplingDaemon::collect(std::int64_t interval,
                             std::span<const ModeTotals> node_totals,
                             std::span<const std::uint64_t> node_quads,
                             std::span<const std::uint8_t> reachable,
                             int busy_nodes) {
  if (node_totals.size() != prev_.size() ||
      node_quads.size() != prev_.size() ||
      reachable.size() != prev_.size()) {
    throw std::invalid_argument("collect: span size != node count");
  }
  // A record only makes sense once at least one baseline exists; the very
  // first collect of a campaign primes the fleet and emits nothing.
  bool any_primed = false;
  for (std::uint8_t p : primed_) {
    if (p) {
      any_primed = true;
      break;
    }
  }

  IntervalRecord rec;
  rec.interval = interval;
  rec.nodes_expected = static_cast<int>(prev_.size());
  rec.busy_nodes = busy_nodes;
  int newly_primed = 0;
  int unreachable = 0;
  for (std::size_t i = 0; i < prev_.size(); ++i) {
    if (!reachable[i]) {
      // The baseline stays: when the node reappears, its delta covers the
      // gap (nothing is lost unless it also rebooted, which the monotone
      // guard below catches).
      ++unreachable;
      continue;
    }
    // The guard is unconditional in every build: subtracting a baseline
    // from reset counters would wrap the uint64 deltas into astronomical
    // garbage that no downstream check could attribute.  (Before this
    // guard existed, Release builds silently underflowed here.)
    const bool monotone = primed_[i] && node_totals[i].covers(prev_[i]) &&
                          node_quads[i] >= prev_quads_[i];
    if (monotone) {
      rec.delta += node_totals[i].since(prev_[i]);
      rec.quad_surplus += node_quads[i] - prev_quads_[i];
      ++rec.nodes_sampled;
    } else if (primed_[i]) {
      // Counter reset (node reboot) between samples: drop this node's
      // interval contribution and re-establish the baseline.
      ++rec.nodes_reprimed;
    } else {
      ++newly_primed;
    }
    prev_[i] = node_totals[i];
    prev_quads_[i] = node_quads[i];
    primed_[i] = 1;
  }
  ingest(rec, unreachable, newly_primed, any_primed);
}

void SamplingDaemon::ingest(const IntervalRecord& rec, int unreachable,
                            int newly_primed, bool any_primed) {
  // Debug-only bookkeeping diagnostic: every expected node must be
  // accounted for as sampled, re-primed, newly primed or unreachable.
  P2SIM_CHECK(rec.nodes_sampled + rec.nodes_reprimed + newly_primed +
                      unreachable ==
                  rec.nodes_expected,
              "daemon coverage accounting must partition the fleet");
  total_reprimes_ += rec.nodes_reprimed;
  total_unreachable_ += unreachable;
  // Telemetry: one span per real collect (a priming call, interval < 0,
  // establishes baselines and is not a campaign sample).
  if (rec.interval >= 0) {
    if (auto* tel = telemetry::current()) {
      const double ival_s = static_cast<double>(util::kIntervalSeconds);
      auto span = telemetry::span("rs2hpm", "daemon_collect",
                                  static_cast<double>(rec.interval) * ival_s);
      span.arg("nodes_sampled", static_cast<double>(rec.nodes_sampled));
      span.arg("nodes_reprimed", static_cast<double>(rec.nodes_reprimed));
      span.close(static_cast<double>(rec.interval + 1) * ival_s);
      tel->registry
          .gauge("p2sim_daemon_coverage",
                 "Fraction of expected node-samples in the last collect")
          .set(rec.nodes_expected > 0
                   ? static_cast<double>(rec.nodes_sampled) /
                         static_cast<double>(rec.nodes_expected)
                   : 0.0);
      if (rec.nodes_reprimed > 0) {
        tel->registry
            .counter("p2sim_daemon_reprimes_total",
                     "Node baselines re-established after a counter reset")
            .inc(static_cast<std::uint64_t>(rec.nodes_reprimed));
      }
      if (unreachable > 0) {
        tel->registry
            .counter("p2sim_daemon_unreachable_total",
                     "Node-samples skipped because the node was unreachable")
            .inc(static_cast<std::uint64_t>(unreachable));
      }
    }
  }
  if (any_primed) records_.push_back(rec);
}

void SamplingDaemon::save_ckpt(util::CkptWriter& w) const {
  w.put_u64(prev_.size());
  for (const ModeTotals& t : prev_) t.save_ckpt(w);
  for (std::uint64_t q : prev_quads_) w.put_u64(q);
  for (std::uint8_t p : primed_) w.put_u8(p);
  w.put_u64(records_.size());
  for (const IntervalRecord& rec : records_) rec.save_ckpt(w);
  w.put_i64(total_reprimes_);
  w.put_i64(total_unreachable_);
}

void SamplingDaemon::restore_ckpt(util::CkptReader& r) {
  std::uint64_t n = r.read_u64("daemon.num_nodes");
  if (n != prev_.size()) {
    throw util::CkptError("daemon.num_nodes: node count mismatch");
  }
  for (ModeTotals& t : prev_) t.restore_ckpt(r);
  for (std::uint64_t& q : prev_quads_) q = r.read_u64("daemon.prev_quad");
  for (std::uint8_t& p : primed_) p = r.read_u8("daemon.primed");
  records_.clear();
  std::uint64_t nr = r.read_u64("daemon.records_size");
  records_.resize(static_cast<std::size_t>(nr));
  for (IntervalRecord& rec : records_) rec.restore_ckpt(r);
  total_reprimes_ = r.read_i64("daemon.total_reprimes");
  total_unreachable_ = r.read_i64("daemon.total_unreachable");
}

}  // namespace p2sim::rs2hpm
