// Derived performance rates — the quantities the paper's tables report.
//
// Everything here is computed from a wrap-corrected counter delta and an
// elapsed wall time, exactly the inputs the RS2HPM reporting scripts had.
// Flop accounting follows section 5: "the fma operation counts as an add
// and a multiply" — the hardware already folds the fma add into the
// fpop.fp_add counters, so total flops = add + mul + div + muladd.
//
// One paper quantity is *not* derivable from the Table 1 selection: the
// "Mops" column, which runs a few percent above Mips.  We model it as
// instructions plus the extra word moved by each quad load/store; because
// no counter reports quad operations, the caller supplies the quad count
// from the simulator's diagnostic channel (the original tool would have
// used a calibration factor — the paper never defines Mops precisely).
#pragma once

#include <cstdint>

#include "src/rs2hpm/snapshot.hpp"

namespace p2sim::rs2hpm {

/// Rates in millions per second unless noted; ratios dimensionless.
struct DerivedRates {
  double elapsed_s = 0.0;

  // OPS rows of Table 3.
  double mflops_all = 0.0;
  double mflops_add = 0.0;
  double mflops_div = 0.0;
  double mflops_mul = 0.0;
  double mflops_fma = 0.0;

  // INST rows of Table 3.
  double mips_fpu = 0.0;
  double mips_fpu0 = 0.0;
  double mips_fpu1 = 0.0;
  double mips_fxu = 0.0;
  double mips_fxu0 = 0.0;
  double mips_fxu1 = 0.0;
  double mips_icu = 0.0;

  // Table 2 aggregates.
  double mips = 0.0;
  double mops = 0.0;

  // CACHE rows (millions of events per second).
  double dcache_miss_mps = 0.0;
  double tlb_miss_mps = 0.0;
  double icache_miss_mps = 0.0;

  // I/O rows (millions of transfers per second).
  double dma_read_mps = 0.0;
  double dma_write_mps = 0.0;

  // Wait-state fractions (share of elapsed node time), derivable only
  // when the monitor ran the kWaitStates selection; zero otherwise.
  double comm_wait_fraction = 0.0;
  double io_wait_fraction = 0.0;

  // Ratios discussed in section 5 / Table 4.
  double cache_miss_ratio = 0.0;   ///< misses / FXU instructions (lower bound)
  double tlb_miss_ratio = 0.0;     ///< TLB misses / FXU instructions
  double flops_per_memref = 0.0;   ///< flops / FXU instructions
  double fma_flop_fraction = 0.0;  ///< share of flops produced by fma
  double fpu0_fpu1_ratio = 0.0;    ///< instruction asymmetry (paper: ~1.7)
  double fxu1_fxu0_ratio = 0.0;    ///< Table 3 asymmetry (~1.5)
  /// Figure 5's x-axis: (system-mode FXU) / (user-mode FXU).
  double system_user_fxu_ratio = 0.0;
};

/// Computes user-mode rates from a counter delta over `elapsed_s` seconds.
/// `quad_surplus` is the number of quad memory instructions in the window
/// (each adds one extra operation to Mops); pass 0 when unknown.
/// `selection` must match the monitor configuration that produced the
/// delta: under kWaitStates the divide slots carry wait-state cycle counts
/// (divide rates are then reported as zero and the wait fractions filled).
DerivedRates derive_rates(
    const ModeTotals& delta, double elapsed_s, std::uint64_t quad_surplus = 0,
    hpm::CounterSelection selection = hpm::CounterSelection::kNasDefault);

}  // namespace p2sim::rs2hpm
