// Micro Channel DMA engine model.
//
// The SCU's DMA counters report *transfers*, where "a single transfer can
// represent either 4 or 8 words" (section 5) — 32 or 64 bytes.  The engine
// converts byte traffic into transfer counts using a configurable 8-word
// share, carrying fractional residuals so that fine-grained interval
// accounting conserves bytes exactly.
#pragma once

#include <cstdint>

#include "src/check/annotate.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::cluster {

struct DmaConfig {
  /// Fraction of transfers that move 8 words (64 bytes); the rest move 4.
  double eight_word_fraction = 0.5;

  P2SIM_PAR_SAFE double avg_transfer_bytes() const {
    return eight_word_fraction * 64.0 + (1.0 - eight_word_fraction) * 32.0;
  }
};

/// Accumulates read (memory -> device) and write (device -> memory) traffic
/// and exposes whole-transfer counts as the hardware counters would see.
class DmaEngine {
 public:
  explicit DmaEngine(const DmaConfig& cfg = {}) : cfg_(cfg) {}

  /// `reads` = bytes leaving memory (sends, disk writes);
  /// `writes` = bytes entering memory (receives, disk reads).
  P2SIM_PAR_SAFE void transfer(double read_bytes, double write_bytes);

  /// Transfers completed since the last harvest; the caller feeds these to
  /// the performance monitor and the engine keeps only sub-transfer
  /// residuals.
  struct Harvest {
    std::uint64_t read_transfers = 0;
    std::uint64_t write_transfers = 0;
  };
  P2SIM_PAR_SAFE Harvest harvest();

  double total_read_bytes() const { return total_read_bytes_; }
  double total_write_bytes() const { return total_write_bytes_; }
  /// Sub-transfer residuals awaiting harvest (equivalence tests compare
  /// these byte-for-byte between accrual paths).
  double pending_read_bytes() const { return pending_read_bytes_; }
  double pending_write_bytes() const { return pending_write_bytes_; }
  const DmaConfig& config() const { return cfg_; }

  /// Checkpoint support: residuals and lifetime totals round-trip exactly.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_f64(pending_read_bytes_);
    w.put_f64(pending_write_bytes_);
    w.put_f64(total_read_bytes_);
    w.put_f64(total_write_bytes_);
  }
  void restore_ckpt(util::CkptReader& r) {
    pending_read_bytes_ = r.read_f64("dma.pending_read");
    pending_write_bytes_ = r.read_f64("dma.pending_write");
    total_read_bytes_ = r.read_f64("dma.total_read");
    total_write_bytes_ = r.read_f64("dma.total_write");
  }

 private:
  DmaConfig cfg_;
  double pending_read_bytes_ = 0.0;
  double pending_write_bytes_ = 0.0;
  double total_read_bytes_ = 0.0;
  double total_write_bytes_ = 0.0;
};

}  // namespace p2sim::cluster
