// Memory oversubscription / paging model — the mechanism behind the paper's
// "surprising finding".
//
// Nodes have 128 MB; codes with runtime-sized automatic arrays sometimes
// oversubscribe it, and AIX then pages to local disk.  HPM output for such
// jobs showed *system-mode* FXU/ICU instruction counts exceeding user-mode
// counts (section 6), and days dominated by such jobs sat at the bottom of
// the performance range (Figure 5).  The model maps an oversubscription
// ratio to a steady-state page-fault rate, a user-work slowdown, and the
// system-mode instruction/cycle overhead charged per fault.
#pragma once

#include <algorithm>
#include <cstdint>

namespace p2sim::cluster {

struct PagingConfig {
  double node_memory_mb = 128.0;
  /// Page faults per second at 2x oversubscription (thrash knee scale).
  double fault_rate_at_2x = 500.0;
  /// Service time per fault (disk + handler), seconds.
  double fault_service_s = 3.5e-3;
  /// System-mode instructions executed per fault: the VMM fault path, page
  /// replacement scan, pager daemons and the disk I/O stack.  Sized so that
  /// thrashing nodes show system-mode FXU counts *exceeding* user mode, the
  /// section 6 signature.
  double fxu_inst_per_fault = 55000.0;
  double icu_inst_per_fault = 13000.0;
  /// System-mode cycles per fault actually executing (not disk wait).
  double cycles_per_fault = 130000.0;
  double page_bytes = 4096.0;
};

/// Steady-state paging behaviour for one node running one job.
struct PagingState {
  double fault_rate = 0.0;      ///< faults per second of wall time
  double user_slowdown = 1.0;   ///< multiply user compute throughput by this
  double oversubscription = 0.0;///< demand / capacity
};

class PagingModel {
 public:
  explicit PagingModel(const PagingConfig& cfg = {}) : cfg_(cfg) {}

  /// Computes paging intensity for a per-node memory demand in MB.
  /// Demand at or below capacity pages negligibly; beyond capacity the
  /// fault rate grows superlinearly and the user slowdown follows the
  /// fraction of wall time spent waiting on fault service.
  PagingState evaluate(double demand_mb) const {
    PagingState s;
    if (cfg_.node_memory_mb <= 0.0) return s;
    s.oversubscription = demand_mb / cfg_.node_memory_mb;
    if (s.oversubscription <= 1.0) return s;
    // Quadratic growth in the excess: mild overcommit is survivable,
    // 2x demand thrashes.
    const double excess = s.oversubscription - 1.0;
    s.fault_rate = cfg_.fault_rate_at_2x * excess * excess;
    const double busy_frac = std::min(0.95, s.fault_rate * cfg_.fault_service_s);
    s.fault_rate *= (1.0 - 0.5 * busy_frac);  // self-limiting near saturation
    s.user_slowdown = std::max(0.02, 1.0 - busy_frac);
    return s;
  }

  const PagingConfig& config() const { return cfg_; }

 private:
  PagingConfig cfg_;
};

}  // namespace p2sim::cluster
