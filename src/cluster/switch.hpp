// High Performance Switch model (Stunkel et al. 1995, as characterized in
// section 2 of the paper): ~45 microsecond latency, ~34 Mbyte/s node-to-node
// bandwidth, with aggregate bandwidth scaling linearly in the number of
// processors (so the fabric itself never becomes the bottleneck — matching
// NAS's observation that message-passing jobs scaled well under full load).
#pragma once

#include <cstdint>

namespace p2sim::cluster {

struct SwitchConfig {
  double latency_s = 45e-6;
  double bandwidth_bytes_per_s = 34e6;
};

class HpsSwitch {
 public:
  explicit HpsSwitch(const SwitchConfig& cfg = {}) : cfg_(cfg) {}

  /// Time for one point-to-point message of `bytes`.
  double message_time(double bytes) const {
    return cfg_.latency_s + bytes / cfg_.bandwidth_bytes_per_s;
  }

  /// Time for a nearest-neighbour exchange phase: each node sends
  /// `msgs` messages of `bytes_each`; sends to distinct partners overlap,
  /// so the phase costs one serialized stream per node.
  double exchange_time(int msgs, double bytes_each) const {
    if (msgs <= 0) return 0.0;
    return static_cast<double>(msgs) * message_time(bytes_each);
  }

  /// Aggregate fabric bandwidth for `nodes` processors (linear scaling).
  double aggregate_bandwidth(int nodes) const {
    return cfg_.bandwidth_bytes_per_s * static_cast<double>(nodes < 0 ? 0 : nodes);
  }

  /// Records traffic for campaign-level accounting.
  void account(double bytes) { total_bytes_ += bytes; }
  double total_bytes() const { return total_bytes_; }

  const SwitchConfig& config() const { return cfg_; }

 private:
  SwitchConfig cfg_;
  double total_bytes_ = 0.0;
};

}  // namespace p2sim::cluster
