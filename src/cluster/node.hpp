// One SP2 node: a POWER2 CPU with its performance monitor, the RS2HPM
// extension layer, and a Micro Channel DMA engine.
//
// At workload (level B) granularity the node advances in wall-time slices:
// user work accrues counter events from a kernel's EventSignature, system
// work (paging, OS overhead) accrues into the system-mode bank, and I/O
// traffic accrues DMA transfers.  Faithfulness detail: events pass through
// the real 32-bit wrapping CounterBank and are recovered by sub-wrap
// multipass sampling, exactly as the Maki tools did — advance() internally
// chunks long slices so no counter can wrap twice between samples.
#pragma once

#include <cstdint>

#include "src/check/annotate.hpp"
#include "src/cluster/dma.hpp"
#include "src/hpm/monitor.hpp"
#include "src/power2/signature.hpp"
#include "src/rs2hpm/snapshot.hpp"
#include "src/util/sim_time.hpp"

namespace p2sim::cluster {

/// What a node is doing during a wall-time slice.
struct ActivityProfile {
  /// Fraction of wall time executing user compute (the rest is comm wait,
  /// I/O wait, fault service or idle — none of which retire user events).
  double compute_fraction = 1.0;
  /// Message-passing traffic rates (bytes/s of wall time).
  double comm_send_bytes_per_s = 0.0;
  double comm_recv_bytes_per_s = 0.0;
  /// Filesystem traffic (bytes/s): reads enter memory, writes leave it.
  double disk_read_bytes_per_s = 0.0;
  double disk_write_bytes_per_s = 0.0;
  /// Paging intensity (see PagingModel) and per-fault OS costs.
  double page_faults_per_s = 0.0;
  /// Wait-state shares of wall time (for the kWaitStates selection): time
  /// blocked in message-passing and in disk/fault service respectively.
  double comm_wait_fraction = 0.0;
  double io_wait_fraction = 0.0;
};

struct NodeConfig {
  double clock_hz = util::MachineClock::kHz;
  double memory_mb = 128.0;
  hpm::MonitorConfig monitor{};
  DmaConfig dma{};
  /// System-mode costs per page fault (kept here so the node can convert a
  /// fault rate into counter events without knowing the paging model).
  double fault_fxu_inst = 55000.0;
  double fault_icu_inst = 13000.0;
  double fault_cycles = 130000.0;
  double page_bytes = 4096.0;
  /// Background OS noise while busy (system-mode instructions per second).
  double os_noise_fxu_per_s = 150e3;
  double os_noise_icu_per_s = 40e3;
  /// Longest slice applied between multipass samples; must stay below the
  /// 32-bit cycle-counter wrap (~64 s at 66.7 MHz).
  double max_sample_slice_s = 50.0;
  /// Use the original slice-by-slice accrual loop instead of the
  /// closed-form batched path.  The two are bit-identical by contract
  /// (tests/cluster/accrual_equivalence_test.cpp); the reference loop is
  /// kept as the oracle and for perf comparison, not for correctness.
  bool reference_accrual = false;
};

class Node {
 public:
  explicit Node(int id, const NodeConfig& cfg = {});

  /// Advances `seconds` of wall time running user work described by `sig`
  /// and `profile`.  Pass sig == nullptr for a purely idle/system slice.
  ///
  /// Contract (checked under P2SIM_CHECKS): every ActivityProfile fraction
  /// must be finite and in [0, 1], and every rate finite and >= 0 — a NaN
  /// rate would silently poison the residual accumulators.  Wait-state
  /// fractions require sig != nullptr: without a job there is nothing to
  /// attribute blocked time to, so the slice counts as idle/system time,
  /// no wait-state cycles are recorded, and busy_seconds() does not grow.
  P2SIM_PAR_SAFE void advance(double seconds,
                              const power2::EventSignature* sig,
                              const ActivityProfile& profile);

  /// Idle slice: only daemon-level OS noise accrues.
  P2SIM_PAR_SAFE void advance_idle(double seconds);

  /// Power failure: the node drops out of service instantly.  Monitor
  /// state does not survive — the 32-bit banks, the RS2HPM 64-bit
  /// extension and the quad diagnostic all restart from zero, which is
  /// exactly the non-monotonicity downstream consumers must tolerate.
  /// advance()/advance_idle() are no-ops while the node is down.
  P2SIM_SERIAL_ONLY void crash();
  /// Returns the node to service (counters stay zeroed from the crash).
  P2SIM_SERIAL_ONLY void reboot();
  P2SIM_PAR_SAFE bool is_up() const { return up_; }

  P2SIM_PAR_SAFE int id() const { return id_; }
  const NodeConfig& config() const { return cfg_; }

  /// RS2HPM view: monotone 64-bit extended totals.  Lane-local reads, so
  /// the owning lane may probe them inside the parallel region.
  P2SIM_PAR_SAFE const rs2hpm::ModeTotals& totals() const {
    return ext_.totals();
  }
  /// Diagnostic channel (not a hardware counter): cumulative quad ops.
  P2SIM_PAR_SAFE std::uint64_t quad_total() const { return quad_total_; }
  /// Raw monitor (tests peek at the wrapping banks).
  const hpm::PerformanceMonitor& monitor() const { return monitor_; }
  /// DMA engine state (equivalence tests compare it byte-for-byte).
  const DmaEngine& dma() const { return dma_; }

  double busy_seconds() const { return busy_seconds_; }

  /// Checkpoint support: the complete per-node dynamic state (wrapping
  /// banks, 64-bit extension, DMA residuals, up/down flag, event
  /// residuals), so a restored node advances bit-identically.
  void save_ckpt(util::CkptWriter& w) const {
    monitor_.save_ckpt(w);
    ext_.save_ckpt(w);
    dma_.save_ckpt(w);
    w.put_u64(quad_total_);
    w.put_f64(busy_seconds_);
    w.put_bool(up_);
    w.put_f64(resid_fault_fxu_);
    w.put_f64(resid_fault_icu_);
    w.put_f64(resid_fault_cycles_);
    w.put_f64(resid_noise_fxu_);
    w.put_f64(resid_noise_icu_);
  }
  void restore_ckpt(util::CkptReader& r) {
    monitor_.restore_ckpt(r);
    ext_.restore_ckpt(r);
    dma_.restore_ckpt(r);
    quad_total_ = r.read_u64("node.quad_total");
    busy_seconds_ = r.read_f64("node.busy_seconds");
    up_ = r.read_bool("node.up");
    resid_fault_fxu_ = r.read_f64("node.resid_fault_fxu");
    resid_fault_icu_ = r.read_f64("node.resid_fault_icu");
    resid_fault_cycles_ = r.read_f64("node.resid_fault_cycles");
    resid_noise_fxu_ = r.read_f64("node.resid_noise_fxu");
    resid_noise_icu_ = r.read_f64("node.resid_noise_icu");
  }

 private:
  P2SIM_PAR_SAFE void apply_slice(double seconds,
                                  const power2::EventSignature* sig,
                                  const ActivityProfile& profile);
  P2SIM_PAR_SAFE void advance_reference(double seconds,
                                        const power2::EventSignature* sig,
                                        const ActivityProfile& profile);
  P2SIM_PAR_SAFE void advance_batched(double seconds,
                                      const power2::EventSignature* sig,
                                      const ActivityProfile& profile);
  P2SIM_PAR_SAFE void check_profile(const power2::EventSignature* sig,
                                    const ActivityProfile& profile) const;

  int id_;
  NodeConfig cfg_;
  hpm::PerformanceMonitor monitor_;
  rs2hpm::ExtendedCounters ext_;
  DmaEngine dma_;
  std::uint64_t quad_total_ = 0;
  double busy_seconds_ = 0.0;
  bool up_ = true;
  // Residual accumulators so sub-event rates survive chunking.
  double resid_fault_fxu_ = 0.0;
  double resid_fault_icu_ = 0.0;
  double resid_fault_cycles_ = 0.0;
  double resid_noise_fxu_ = 0.0;
  double resid_noise_icu_ = 0.0;
};

}  // namespace p2sim::cluster
