#include "src/cluster/dma.hpp"

#include <cmath>

namespace p2sim::cluster {

void DmaEngine::transfer(double read_bytes, double write_bytes) {
  if (read_bytes > 0.0) {
    pending_read_bytes_ += read_bytes;
    total_read_bytes_ += read_bytes;
  }
  if (write_bytes > 0.0) {
    pending_write_bytes_ += write_bytes;
    total_write_bytes_ += write_bytes;
  }
}

DmaEngine::Harvest DmaEngine::harvest() {
  const double per = cfg_.avg_transfer_bytes();
  Harvest h;
  const double r = std::floor(pending_read_bytes_ / per);
  const double w = std::floor(pending_write_bytes_ / per);
  h.read_transfers = static_cast<std::uint64_t>(r);
  h.write_transfers = static_cast<std::uint64_t>(w);
  pending_read_bytes_ -= r * per;
  pending_write_bytes_ -= w * per;
  return h;
}

}  // namespace p2sim::cluster
