// NFS-mounted home filesystem model (section 2): three 8 GB filesystems
// shared by all nodes, reached over the switch.  The model's role in the
// reproduction is to (a) generate the disk component of the DMA counters
// ("the average value for disk I/O traffic is 3.2 Mbytes/second") and
// (b) throttle aggregate filesystem traffic to a server-side limit.
#pragma once

#include <algorithm>

#include "src/util/ckpt.hpp"

namespace p2sim::cluster {

struct NfsConfig {
  int num_filesystems = 3;
  double capacity_gb_each = 8.0;
  /// Aggregate server bandwidth across all home filesystems.
  double server_bandwidth_bytes_per_s = 3 * 12e6;
};

class NfsModel {
 public:
  explicit NfsModel(const NfsConfig& cfg = {}) : cfg_(cfg) {}

  /// Given the cluster-wide requested disk byte rate this interval, returns
  /// the granted rate (uniform throttling when the server saturates).
  double grant(double requested_bytes_per_s) const {
    return std::min(requested_bytes_per_s, cfg_.server_bandwidth_bytes_per_s);
  }

  /// Fraction of the request each node actually achieves.
  double grant_fraction(double requested_bytes_per_s) const {
    if (requested_bytes_per_s <= 0.0) return 1.0;
    return grant(requested_bytes_per_s) / requested_bytes_per_s;
  }

  void account(double bytes) { total_bytes_ += bytes; }
  double total_bytes() const { return total_bytes_; }
  const NfsConfig& config() const { return cfg_; }

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const { w.put_f64(total_bytes_); }
  void restore_ckpt(util::CkptReader& r) {
    total_bytes_ = r.read_f64("nfs.total_bytes");
  }

 private:
  NfsConfig cfg_;
  double total_bytes_ = 0.0;
};

}  // namespace p2sim::cluster
