// Communication-fraction model: from message sizes to wait shares.
//
// Section 4 describes the dominant parallel structure: domain decomposition
// with one or more blocks per processor and nearest-neighbour exchanges
// each step.  Given the per-step compute time and the exchange shape, the
// switch parameters (45 us latency, 34 MB/s) determine the communication
// share of wall time — and its growth with node count, since smaller
// per-node blocks mean less compute per exchanged byte (surface-to-volume
// scaling).  Synchronous codes additionally serialize their exchanges.
#pragma once

#include <algorithm>
#include <cmath>

#include "src/cluster/switch.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::cluster {

/// One parallel code's communication shape at a reference decomposition.
struct CommShape {
  /// Grid points per node at the reference node count (e.g. 50^3 = 125000).
  double points_per_node_ref = 125000.0;
  int ref_nodes = 16;
  /// Seconds of compute per point between consecutive exchange phases
  /// (implicit solvers exchange several times per timestep; ~70 flops per
  /// point per phase at the workload's ~25 Mflops).
  double compute_s_per_point = 2.8e-6;
  /// Bytes exchanged per *surface* point per step (solution variables on
  /// the halo).
  double bytes_per_surface_point = 200.0;
  /// Messages per exchange phase (one per face for a 3-D decomposition).
  int msgs_per_exchange = 6;
  /// Synchronous codes cannot overlap communication with compute.
  bool synchronous = true;
  /// Overlap efficiency for asynchronous codes (fraction of comm hidden).
  double overlap = 0.6;

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_f64(points_per_node_ref);
    w.put_i32(ref_nodes);
    w.put_f64(compute_s_per_point);
    w.put_f64(bytes_per_surface_point);
    w.put_i32(msgs_per_exchange);
    w.put_bool(synchronous);
    w.put_f64(overlap);
  }
  void restore_ckpt(util::CkptReader& r) {
    points_per_node_ref = r.read_f64("comm_shape.points_per_node_ref");
    ref_nodes = r.read_i32("comm_shape.ref_nodes");
    compute_s_per_point = r.read_f64("comm_shape.compute_s_per_point");
    bytes_per_surface_point = r.read_f64("comm_shape.bytes_per_surface");
    msgs_per_exchange = r.read_i32("comm_shape.msgs_per_exchange");
    synchronous = r.read_bool("comm_shape.synchronous");
    overlap = r.read_f64("comm_shape.overlap");
  }
};

/// Estimates the communication-wait share of wall time when the same
/// global problem runs on `nodes` nodes (fixed total size: per-node volume
/// shrinks as 1/nodes, surface as 1/nodes^(2/3)).
inline double comm_fraction(const HpsSwitch& sw, const CommShape& shape,
                            int nodes) {
  if (nodes <= 1) return 0.0;
  const double scale =
      static_cast<double>(shape.ref_nodes) / static_cast<double>(nodes);
  const double points = shape.points_per_node_ref * scale;
  // Surface of a roughly cubic block: 6 * points^(2/3).
  const double surface = 6.0 * std::pow(points, 2.0 / 3.0);
  const double compute_s = points * shape.compute_s_per_point;
  const double bytes = surface * shape.bytes_per_surface_point /
                       std::max(1, shape.msgs_per_exchange);
  double comm_s = sw.exchange_time(shape.msgs_per_exchange, bytes);
  if (!shape.synchronous) comm_s *= (1.0 - shape.overlap);
  if (compute_s + comm_s <= 0.0) return 0.0;
  return std::clamp(comm_s / (compute_s + comm_s), 0.0, 0.95);
}

}  // namespace p2sim::cluster
