#include "src/cluster/node.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/check/check.hpp"
#include "src/power2/field_table.hpp"

namespace p2sim::cluster {
namespace {

/// Splits an accumulated fractional count into a whole number plus residual.
P2SIM_PAR_SAFE std::uint64_t take_whole(double& residual) {
  const double whole = std::floor(residual);
  residual -= whole;
  return static_cast<std::uint64_t>(whole);
}

}  // namespace

Node::Node(int id, const NodeConfig& cfg)
    : id_(id), cfg_(cfg), monitor_(cfg.monitor), dma_(cfg.dma) {
  if (cfg_.max_sample_slice_s <= 0.0 ||
      cfg_.max_sample_slice_s * cfg_.clock_hz >= 4.0e9) {
    throw std::invalid_argument(
        "max_sample_slice_s must keep the cycle counter below one wrap");
  }
  ext_.attach(monitor_);
}

void Node::crash() {
  up_ = false;
  // Everything volatile dies with the OS: raw 32-bit banks, the daemon's
  // 64-bit extension (its process is gone), the DMA engine's residuals and
  // the quad diagnostic.  busy_seconds_ survives — it is the simulator's
  // own lifetime statistic, not node state.
  monitor_.clear();
  ext_ = rs2hpm::ExtendedCounters{};
  ext_.attach(monitor_);
  dma_ = DmaEngine(cfg_.dma);
  quad_total_ = 0;
  resid_fault_fxu_ = resid_fault_icu_ = resid_fault_cycles_ = 0.0;
  resid_noise_fxu_ = resid_noise_icu_ = 0.0;
}

void Node::reboot() { up_ = true; }

void Node::advance(double seconds, const power2::EventSignature* sig,
                   const ActivityProfile& profile) {
  if (!up_) return;  // a down node executes nothing and counts nothing
  if (seconds <= 0.0) return;
  check_profile(sig, profile);
  if (cfg_.reference_accrual) {
    advance_reference(seconds, sig, profile);
  } else {
    advance_batched(seconds, sig, profile);
  }
  // busy_seconds_ counts job-attached wall time only: with sig == nullptr
  // the slice is idle/system time even when wait fractions were requested
  // (check_profile forbids that combination — see the advance() contract).
  if (sig != nullptr) busy_seconds_ += seconds;
}

void Node::advance_reference(double seconds, const power2::EventSignature* sig,
                             const ActivityProfile& profile) {
  double left = seconds;
  while (left > 0.0) {
    const double slice = std::min(left, cfg_.max_sample_slice_s);
    apply_slice(slice, sig, profile);
    ext_.sample(monitor_);  // multipass: sample well below the wrap period
    left -= slice;
  }
}

// The closed-form fast path.  The reference loop above cuts `seconds` into
// n identical full slices of max_sample_slice_s plus one fp-exact remainder
// (repeated `left -= max` reproduces the same doubles), and every full
// slice is arithmetically identical: the same `rounded(rate * cycles)` per
// field, the same wait-state truncation.  So the user-mode total is
//     n * scale(full_slice) + scale(remainder)
// computed with two scales instead of n + 1.  The 32-bit banks only ever
// see sums mod 2^32, and each reference slice advances every mapped
// counter by < 2^32 (the ctor's wrap bound on cycles; physical rates are
// <= a few per cycle), so each per-slice wrap_delta equals the true
// increment and the summed 64-bit totals handed to ExtendedCounters::
// accrue are exactly what slice-by-slice sampling would have accumulated.
// Only the floating-point carry state — the five residual accumulators,
// the integer fxu split, and the DMA byte residuals — depends on slice
// boundaries, so just that state is replayed per slice (~25 flops each,
// no scaling, no bank traffic, no sampling).
void Node::advance_batched(double seconds, const power2::EventSignature* sig,
                           const ActivityProfile& profile) {
  // Replicate the reference slice decomposition bit-for-bit.
  std::uint64_t n_full = 0;
  double left = seconds;
  while (left > cfg_.max_sample_slice_s) {
    left -= cfg_.max_sample_slice_s;
    ++n_full;
  }
  const double rem = left;  // in (0, max_sample_slice_s]

  hpm::CounterAdds user_adds{};
  hpm::CounterAdds sys_adds{};

  // --- user-mode work, closed form ---
  if (sig != nullptr && profile.compute_fraction > 0.0) {
    const auto slice_user = [&](double slice) {
      const double cycles =
          slice * cfg_.clock_hz * std::min(profile.compute_fraction, 1.0);
      P2SIM_INVARIANT(cycles < 4294967296.0,
                      "slice cycles must stay below one counter wrap");
      power2::EventCounts ev = sig->scale(cycles);
      ev.comm_wait_cycles = static_cast<std::uint64_t>(
          slice * cfg_.clock_hz * std::min(profile.comm_wait_fraction, 1.0));
      ev.io_wait_cycles = static_cast<std::uint64_t>(
          slice * cfg_.clock_hz * std::min(profile.io_wait_fraction, 1.0));
      return ev;
    };
    power2::EventCounts user_total;
    if (n_full > 0) {
      const power2::EventCounts full = slice_user(cfg_.max_sample_slice_s);
      user_total.cycles = full.cycles * n_full;
      for (const power2::ScaledField& f : power2::kScaledFields)
        user_total.*(f.count) = (full.*(f.count)) * n_full;
      user_total.comm_wait_cycles = full.comm_wait_cycles * n_full;
      user_total.io_wait_cycles = full.io_wait_cycles * n_full;
    }
    user_total += slice_user(rem);
    monitor_.map_events(user_total, user_adds);
    quad_total_ += user_total.quad_inst;
  }

  // --- system-mode work + DMA: replay only the fp carry state per slice ---
  power2::EventCounts sys_total;
  std::uint64_t io_read = 0;
  std::uint64_t io_write = 0;
  const auto slice_system = [&](double slice) {
    if (profile.page_faults_per_s > 0.0) {
      const double faults = profile.page_faults_per_s * slice;
      resid_fault_fxu_ += faults * cfg_.fault_fxu_inst;
      resid_fault_icu_ += faults * cfg_.fault_icu_inst;
      resid_fault_cycles_ += faults * cfg_.fault_cycles;
      const double page_bytes = faults * cfg_.page_bytes;
      dma_.transfer(/*read_bytes=*/page_bytes, /*write_bytes=*/page_bytes);
    }
    if (sig != nullptr) {
      resid_noise_fxu_ += cfg_.os_noise_fxu_per_s * slice;
      resid_noise_icu_ += cfg_.os_noise_icu_per_s * slice;
    } else {
      resid_noise_fxu_ += 0.05 * cfg_.os_noise_fxu_per_s * slice;
      resid_noise_icu_ += 0.05 * cfg_.os_noise_icu_per_s * slice;
    }
    const std::uint64_t f_fxu =
        take_whole(resid_fault_fxu_) + take_whole(resid_noise_fxu_);
    const std::uint64_t f_icu =
        take_whole(resid_fault_icu_) + take_whole(resid_noise_icu_);
    sys_total.fxu0_inst += f_fxu / 2;
    sys_total.fxu1_inst += f_fxu - f_fxu / 2;
    sys_total.icu_type1 += f_icu;
    sys_total.cycles += take_whole(resid_fault_cycles_);
    dma_.transfer(
        (profile.comm_send_bytes_per_s + profile.disk_write_bytes_per_s) *
            slice,
        (profile.comm_recv_bytes_per_s + profile.disk_read_bytes_per_s) *
            slice);
    const DmaEngine::Harvest h = dma_.harvest();
    io_read += h.read_transfers;
    io_write += h.write_transfers;
  };
  for (std::uint64_t i = 0; i < n_full; ++i) {
    slice_system(cfg_.max_sample_slice_s);
  }
  slice_system(rem);

  monitor_.map_events(sys_total, sys_adds);
  if (io_read != 0 || io_write != 0) {
    power2::EventCounts io;
    io.dma_read = io_read;
    io.dma_write = io_write;
    monitor_.map_events(io, user_adds);
  }
  monitor_.accumulate_adds(user_adds, hpm::PrivilegeMode::kUser);
  monitor_.accumulate_adds(sys_adds, hpm::PrivilegeMode::kSystem);
  ext_.accrue(monitor_, user_adds, sys_adds);
}

void Node::check_profile(const power2::EventSignature* sig,
                         const ActivityProfile& profile) const {
#if P2SIM_CHECKS_ENABLED
  const auto fraction_ok = [](double f) {
    return std::isfinite(f) && f >= 0.0 && f <= 1.0;
  };
  const auto rate_ok = [](double r) { return std::isfinite(r) && r >= 0.0; };
  P2SIM_CHECK(fraction_ok(profile.compute_fraction),
              "compute_fraction must be finite and in [0,1]");
  P2SIM_CHECK(fraction_ok(profile.comm_wait_fraction),
              "comm_wait_fraction must be finite and in [0,1]");
  P2SIM_CHECK(fraction_ok(profile.io_wait_fraction),
              "io_wait_fraction must be finite and in [0,1]");
  P2SIM_CHECK(rate_ok(profile.comm_send_bytes_per_s) &&
                  rate_ok(profile.comm_recv_bytes_per_s) &&
                  rate_ok(profile.disk_read_bytes_per_s) &&
                  rate_ok(profile.disk_write_bytes_per_s) &&
                  rate_ok(profile.page_faults_per_s),
              "traffic and fault rates must be finite and >= 0");
  // Wait time belongs to a job; without a signature the slice is idle and
  // the wait-state counters stay silent (see the advance() contract).
  P2SIM_CHECK(sig != nullptr || (profile.comm_wait_fraction == 0.0 &&
                                 profile.io_wait_fraction == 0.0),
              "wait fractions require a running job (sig != nullptr)");
#else
  (void)sig;
  (void)profile;
#endif
}

void Node::advance_idle(double seconds) {
  ActivityProfile idle;
  idle.compute_fraction = 0.0;
  advance(seconds, nullptr, idle);
}

void Node::apply_slice(double seconds, const power2::EventSignature* sig,
                       const ActivityProfile& profile) {
  // --- user-mode work ---
  if (sig != nullptr && profile.compute_fraction > 0.0) {
    const double cycles =
        seconds * cfg_.clock_hz * std::min(profile.compute_fraction, 1.0);
    // The multipass-sampling contract: no slice may advance any counter by
    // a full 2^32, or the wrap correction in ExtendedCounters under-counts
    // (the paper's 15-minute-vs-64-second sampling rule).
    P2SIM_INVARIANT(cycles < 4294967296.0,
                    "slice cycles must stay below one counter wrap");
    power2::EventCounts ev = sig->scale(cycles);
    // Wait-state signals are slice-level, not per-compute-cycle: they count
    // the wall time the processor spent blocked.
    ev.comm_wait_cycles = static_cast<std::uint64_t>(
        seconds * cfg_.clock_hz * std::min(profile.comm_wait_fraction, 1.0));
    ev.io_wait_cycles = static_cast<std::uint64_t>(
        seconds * cfg_.clock_hz * std::min(profile.io_wait_fraction, 1.0));
    monitor_.accumulate(ev, hpm::PrivilegeMode::kUser);
    quad_total_ += ev.quad_inst;
  }

  // --- system-mode work: page-fault handling + background OS noise ---
  power2::EventCounts sys;
  if (profile.page_faults_per_s > 0.0) {
    const double faults = profile.page_faults_per_s * seconds;
    resid_fault_fxu_ += faults * cfg_.fault_fxu_inst;
    resid_fault_icu_ += faults * cfg_.fault_icu_inst;
    resid_fault_cycles_ += faults * cfg_.fault_cycles;
    // Paging I/O moves pages over DMA: evictions out, refills in.
    const double page_bytes = faults * cfg_.page_bytes;
    dma_.transfer(/*read_bytes=*/page_bytes, /*write_bytes=*/page_bytes);
  }
  const bool busy = sig != nullptr;
  if (busy) {
    resid_noise_fxu_ += cfg_.os_noise_fxu_per_s * seconds;
    resid_noise_icu_ += cfg_.os_noise_icu_per_s * seconds;
  } else {
    // Idle nodes still run daemons at a trickle.
    resid_noise_fxu_ += 0.05 * cfg_.os_noise_fxu_per_s * seconds;
    resid_noise_icu_ += 0.05 * cfg_.os_noise_icu_per_s * seconds;
  }
  const std::uint64_t f_fxu = take_whole(resid_fault_fxu_) +
                              take_whole(resid_noise_fxu_);
  const std::uint64_t f_icu = take_whole(resid_fault_icu_) +
                              take_whole(resid_noise_icu_);
  sys.fxu0_inst = f_fxu / 2;
  sys.fxu1_inst = f_fxu - f_fxu / 2;
  sys.icu_type1 = f_icu;
  sys.cycles = take_whole(resid_fault_cycles_);
  monitor_.accumulate(sys, hpm::PrivilegeMode::kSystem);

  // --- DMA traffic: messages and filesystem ---
  // "Reads" move data from memory to a device (sends, file writes);
  // "writes" move data into memory (receives, file reads).
  dma_.transfer(
      (profile.comm_send_bytes_per_s + profile.disk_write_bytes_per_s) *
          seconds,
      (profile.comm_recv_bytes_per_s + profile.disk_read_bytes_per_s) *
          seconds);
  const DmaEngine::Harvest h = dma_.harvest();
  if (h.read_transfers || h.write_transfers) {
    power2::EventCounts io;
    io.dma_read = h.read_transfers;
    io.dma_write = h.write_transfers;
    monitor_.accumulate(io, hpm::PrivilegeMode::kUser);
  }
}

}  // namespace p2sim::cluster
