#include "src/cluster/node.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/check/check.hpp"

namespace p2sim::cluster {
namespace {

/// Splits an accumulated fractional count into a whole number plus residual.
std::uint64_t take_whole(double& residual) {
  const double whole = std::floor(residual);
  residual -= whole;
  return static_cast<std::uint64_t>(whole);
}

}  // namespace

Node::Node(int id, const NodeConfig& cfg)
    : id_(id), cfg_(cfg), monitor_(cfg.monitor), dma_(cfg.dma) {
  if (cfg_.max_sample_slice_s <= 0.0 ||
      cfg_.max_sample_slice_s * cfg_.clock_hz >= 4.0e9) {
    throw std::invalid_argument(
        "max_sample_slice_s must keep the cycle counter below one wrap");
  }
  ext_.attach(monitor_);
}

void Node::crash() {
  up_ = false;
  // Everything volatile dies with the OS: raw 32-bit banks, the daemon's
  // 64-bit extension (its process is gone), the DMA engine's residuals and
  // the quad diagnostic.  busy_seconds_ survives — it is the simulator's
  // own lifetime statistic, not node state.
  monitor_.clear();
  ext_ = rs2hpm::ExtendedCounters{};
  ext_.attach(monitor_);
  dma_ = DmaEngine(cfg_.dma);
  quad_total_ = 0;
  resid_fault_fxu_ = resid_fault_icu_ = resid_fault_cycles_ = 0.0;
  resid_noise_fxu_ = resid_noise_icu_ = 0.0;
}

void Node::reboot() { up_ = true; }

void Node::advance(double seconds, const power2::EventSignature* sig,
                   const ActivityProfile& profile) {
  if (!up_) return;  // a down node executes nothing and counts nothing
  if (seconds <= 0.0) return;
  double left = seconds;
  while (left > 0.0) {
    const double slice = std::min(left, cfg_.max_sample_slice_s);
    apply_slice(slice, sig, profile);
    ext_.sample(monitor_);  // multipass: sample well below the wrap period
    left -= slice;
  }
  if (sig != nullptr) busy_seconds_ += seconds;
}

void Node::advance_idle(double seconds) {
  ActivityProfile idle;
  idle.compute_fraction = 0.0;
  advance(seconds, nullptr, idle);
}

void Node::apply_slice(double seconds, const power2::EventSignature* sig,
                       const ActivityProfile& profile) {
  // --- user-mode work ---
  if (sig != nullptr && profile.compute_fraction > 0.0) {
    const double cycles =
        seconds * cfg_.clock_hz * std::min(profile.compute_fraction, 1.0);
    // The multipass-sampling contract: no slice may advance any counter by
    // a full 2^32, or the wrap correction in ExtendedCounters under-counts
    // (the paper's 15-minute-vs-64-second sampling rule).
    P2SIM_INVARIANT(cycles < 4294967296.0,
                    "slice cycles must stay below one counter wrap");
    power2::EventCounts ev = sig->scale(cycles);
    // Wait-state signals are slice-level, not per-compute-cycle: they count
    // the wall time the processor spent blocked.
    ev.comm_wait_cycles = static_cast<std::uint64_t>(
        seconds * cfg_.clock_hz * std::min(profile.comm_wait_fraction, 1.0));
    ev.io_wait_cycles = static_cast<std::uint64_t>(
        seconds * cfg_.clock_hz * std::min(profile.io_wait_fraction, 1.0));
    monitor_.accumulate(ev, hpm::PrivilegeMode::kUser);
    quad_total_ += ev.quad_inst;
  }

  // --- system-mode work: page-fault handling + background OS noise ---
  power2::EventCounts sys;
  if (profile.page_faults_per_s > 0.0) {
    const double faults = profile.page_faults_per_s * seconds;
    resid_fault_fxu_ += faults * cfg_.fault_fxu_inst;
    resid_fault_icu_ += faults * cfg_.fault_icu_inst;
    resid_fault_cycles_ += faults * cfg_.fault_cycles;
    // Paging I/O moves pages over DMA: evictions out, refills in.
    const double page_bytes = faults * cfg_.page_bytes;
    dma_.transfer(/*read_bytes=*/page_bytes, /*write_bytes=*/page_bytes);
  }
  const bool busy = sig != nullptr;
  if (busy) {
    resid_noise_fxu_ += cfg_.os_noise_fxu_per_s * seconds;
    resid_noise_icu_ += cfg_.os_noise_icu_per_s * seconds;
  } else {
    // Idle nodes still run daemons at a trickle.
    resid_noise_fxu_ += 0.05 * cfg_.os_noise_fxu_per_s * seconds;
    resid_noise_icu_ += 0.05 * cfg_.os_noise_icu_per_s * seconds;
  }
  const std::uint64_t f_fxu = take_whole(resid_fault_fxu_) +
                              take_whole(resid_noise_fxu_);
  const std::uint64_t f_icu = take_whole(resid_fault_icu_) +
                              take_whole(resid_noise_icu_);
  sys.fxu0_inst = f_fxu / 2;
  sys.fxu1_inst = f_fxu - f_fxu / 2;
  sys.icu_type1 = f_icu;
  sys.cycles = take_whole(resid_fault_cycles_);
  monitor_.accumulate(sys, hpm::PrivilegeMode::kSystem);

  // --- DMA traffic: messages and filesystem ---
  // "Reads" move data from memory to a device (sends, file writes);
  // "writes" move data into memory (receives, file reads).
  dma_.transfer(
      (profile.comm_send_bytes_per_s + profile.disk_write_bytes_per_s) *
          seconds,
      (profile.comm_recv_bytes_per_s + profile.disk_read_bytes_per_s) *
          seconds);
  const DmaEngine::Harvest h = dma_.harvest();
  if (h.read_transfers || h.write_transfers) {
    power2::EventCounts io;
    io.dma_read = h.read_transfers;
    io.dma_write = h.write_transfers;
    monitor_.accumulate(io, hpm::PrivilegeMode::kUser);
  }
}

}  // namespace p2sim::cluster
