#include "src/hpm/events.hpp"

namespace p2sim::hpm {
namespace {

constexpr std::array<CounterInfo, kNumCounters> kTable = {{
    {HpmCounter::kUserFxu0, "user.fxu0", "FXU[0]",
     "number of instructions executed by Execution unit 0"},
    {HpmCounter::kUserFxu1, "user.fxu1", "FXU[1]",
     "number of instructions executed by Execution unit 1"},
    {HpmCounter::kUserDcacheMiss, "user.dcache_mis", "FXU[2]",
     "FPU and FXU requests for data not in the D-cache"},
    {HpmCounter::kUserTlbMiss, "user.tlb_mis", "FXU[3]",
     "FPU and FXU requests for data not in the TLB"},
    {HpmCounter::kUserCycles, "user.cycles", "FXU[4]", "user cycles"},
    {HpmCounter::kUserFpu0, "user.fpu0", "FPU0[0]",
     "arithmetic instructions executed by Math 0"},
    {HpmCounter::kFpAdd0, "fpop.fp_add", "FPU0[1]",
     "floating point adds executed by Math 0"},
    {HpmCounter::kFpMul0, "fpop.fp_mul", "FPU0[2]",
     "floating point multiplies executed by Math 0"},
    {HpmCounter::kFpDiv0, "fpop.fp_div", "FPU0[3]",
     "floating point divides executed by Math 0"},
    {HpmCounter::kFpMulAdd0, "fpop.fp_muladd", "FPU0[4]",
     "floating point multiply-adds executed by Math 0"},
    {HpmCounter::kUserFpu1, "user.fpu1", "FPU1[0]",
     "arithmetic instructions executed by Math 1"},
    {HpmCounter::kFpAdd1, "fpop.fp_add", "FPU1[1]",
     "floating point adds executed by Math 1"},
    {HpmCounter::kFpMul1, "fpop.fp_mul", "FPU1[2]",
     "floating point multiplies executed by Math 1"},
    {HpmCounter::kFpDiv1, "fpop.fp_div", "FPU1[3]",
     "floating point divides executed by Math 1"},
    {HpmCounter::kFpMulAdd1, "fpop.fp_muladd", "FPU1[4]",
     "floating point multiply-adds executed by Math 1"},
    {HpmCounter::kUserIcu0, "user.icu0", "ICU[0]",
     "number of type I instructions executed"},
    {HpmCounter::kUserIcu1, "user.icu1", "ICU[1]",
     "number of type II instructions executed"},
    {HpmCounter::kIcacheReload, "user.icache_reload", "SCU[0]",
     "data transfers from memory to the I-cache"},
    {HpmCounter::kDcacheReload, "user.dcache_reload", "SCU[1]",
     "data transfers from memory to the D-cache"},
    {HpmCounter::kDcacheStore, "user.dcache_store", "SCU[2]",
     "number of transfers of D-cache data to memory (modified victim)"},
    {HpmCounter::kDmaRead, "user.dma_read", "SCU[3]",
     "data transfers from memory to an I/O device"},
    {HpmCounter::kDmaWrite, "user.dma_write", "SCU[4]",
     "data transfers to memory from an I/O device"},
}};

}  // namespace

const std::array<CounterInfo, kNumCounters>& counter_table() { return kTable; }

const CounterInfo& counter_info(HpmCounter c) { return kTable[index_of(c)]; }

}  // namespace p2sim::hpm
