// The NAS SP2 RS2HPM counter selection (Table 1 of the paper).
//
// The POWER2 monitor hardware exposes 320 selectable signals through 22
// 32-bit counters on the SCU chip — 5 counters plus 16 reportable events for
// each of the FPU, FXU, ICU and SCU groups.  NAS ran one fixed selection for
// the whole campaign; this header encodes that selection, with each
// counter's Table 1 label, hardware slot and description.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "src/check/annotate.hpp"

namespace p2sim::hpm {

/// Number of hardware counters in the POWER2 monitor.
inline constexpr std::size_t kNumCounters = 22;

/// The 22 NAS-selected events, in Table 1 order.
enum class HpmCounter : std::uint8_t {
  kUserFxu0 = 0,       // FXU[0]  instructions executed by FXU 0
  kUserFxu1,           // FXU[1]  instructions executed by FXU 1
  kUserDcacheMiss,     // FXU[2]  FPU+FXU requests not in the D-cache
  kUserTlbMiss,        // FXU[3]  TLB misses
  kUserCycles,         // FXU[4]  user cycles
  kUserFpu0,           // FPU0[0] arithmetic instructions, Math 0
  kFpAdd0,             // FPU0[1] floating adds (incl. fma adds), Math 0
  kFpMul0,             // FPU0[2] floating multiplies, Math 0
  kFpDiv0,             // FPU0[3] floating divides, Math 0
  kFpMulAdd0,          // FPU0[4] floating multiply-adds, Math 0
  kUserFpu1,           // FPU1[0] arithmetic instructions, Math 1
  kFpAdd1,             // FPU1[1] floating adds, Math 1
  kFpMul1,             // FPU1[2] floating multiplies, Math 1
  kFpDiv1,             // FPU1[3] floating divides, Math 1
  kFpMulAdd1,          // FPU1[4] floating multiply-adds, Math 1
  kUserIcu0,           // ICU[0]  type I instructions (branches)
  kUserIcu1,           // ICU[1]  type II instructions (condition register)
  kIcacheReload,       // SCU[0]  memory -> I-cache transfers
  kDcacheReload,       // SCU[1]  memory -> D-cache transfers
  kDcacheStore,        // SCU[2]  modified-line writebacks to memory
  kDmaRead,            // SCU[3]  memory -> I/O device transfers
  kDmaWrite,           // SCU[4]  I/O device -> memory transfers
};

/// Table 1 metadata for one counter.
struct CounterInfo {
  HpmCounter id;
  std::string_view label;   ///< e.g. "user.fxu0"
  std::string_view slot;    ///< e.g. "FXU[0]"
  std::string_view description;
};

/// The full Table 1, in order.
const std::array<CounterInfo, kNumCounters>& counter_table();

/// Metadata lookup.
P2SIM_PAR_SAFE const CounterInfo& counter_info(HpmCounter c);

P2SIM_PAR_SAFE constexpr std::size_t index_of(HpmCounter c) {
  return static_cast<std::size_t>(c);
}

/// Counting context: the monitor distinguishes events retired while the
/// processor runs user code from those in system (kernel) mode; RS2HPM's
/// multipass sampling reports both, which is how the paper diagnosed the
/// paging pathology (system-mode FXU/ICU exceeding user mode, Figure 5).
enum class PrivilegeMode : std::uint8_t { kUser = 0, kSystem = 1 };

/// Counter selection: which of the POWER2's 320 signals the 22 counters
/// record.  The hardware supports many combinations, "but each combination
/// must be implemented and verified in the monitoring software" (section 3).
///
///  * kNasDefault — the Table 1 selection the nine-month campaign ran.
///    Its known blind spot, stated in the paper's conclusions, is the
///    absence of any wait-time signal: performance-reducing factors such
///    as message-passing delays and I/O wait were invisible, which is why
///    "causal correlations regarding key performance indicators appear
///    difficult to draw".
///  * kWaitStates — the selection the paper recommends other sites
///    consider: identical to the NAS selection except the two divide
///    counters (broken in the NAS deployment anyway) are rededicated to
///    communication-wait and I/O-wait cycle counts:
///       FPU0[3] (fpop.fp_div, Math 0)  ->  comm-wait cycles
///       FPU1[3] (fpop.fp_div, Math 1)  ->  I/O-wait cycles
enum class CounterSelection : std::uint8_t {
  kNasDefault = 0,
  kWaitStates = 1,
};

/// Under kWaitStates these aliases name the rededicated slots.
inline constexpr HpmCounter kCommWaitSlot = HpmCounter::kFpDiv0;
inline constexpr HpmCounter kIoWaitSlot = HpmCounter::kFpDiv1;

}  // namespace p2sim::hpm
