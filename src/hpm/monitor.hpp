// The POWER2 performance monitor proper: 22 physical 32-bit counters per
// privilege mode, fed by EventCounts from the core model (or, at level B,
// by scaled kernel signatures).
//
// Hardware fidelity points:
//   * counters are 32 bits wide and wrap silently — at 66.7 MHz the cycle
//     counter wraps every ~64 seconds, which is why the RS2HPM library must
//     sample well below the wrap period (see rs2hpm::ExtendedCounters);
//   * the NAS configuration suffered a monitor implementation error that
//     "prevented the proper reporting of the division operations" —
//     modelled by the `divide_counter_bug` flag (default on, matching the
//     0.0 Mflops-div rows of Table 3);
//   * user-mode and system-mode events accumulate separately.
#pragma once

#include <array>
#include <cstdint>

#include "src/hpm/events.hpp"
#include "src/power2/event_counts.hpp"

namespace p2sim::hpm {

/// One bank of 22 physical counters; arithmetic wraps mod 2^32 like the
/// real 32-bit registers.
class CounterBank {
 public:
  void add(HpmCounter c, std::uint64_t n) {
    counters_[index_of(c)] =
        static_cast<std::uint32_t>(counters_[index_of(c)] + n);
  }
  std::uint32_t read(HpmCounter c) const { return counters_[index_of(c)]; }
  const std::array<std::uint32_t, kNumCounters>& raw() const {
    return counters_;
  }
  void clear() { counters_.fill(0); }

 private:
  std::array<std::uint32_t, kNumCounters> counters_{};
};

struct MonitorConfig {
  /// The NAS campaign's hardware bug: divide operations never reach the
  /// fp_div counters (instruction counts in user.fpuN are unaffected).
  bool divide_counter_bug = true;
  /// Which signals the 22 counters record (see hpm::CounterSelection).
  CounterSelection selection = CounterSelection::kNasDefault;
};

class PerformanceMonitor {
 public:
  explicit PerformanceMonitor(const MonitorConfig& cfg = {}) : cfg_(cfg) {}

  /// Accumulates a batch of microarchitectural events into the bank for
  /// the given privilege mode.
  void accumulate(const power2::EventCounts& ev, PrivilegeMode mode);

  const CounterBank& bank(PrivilegeMode mode) const {
    return banks_[static_cast<std::size_t>(mode)];
  }
  void clear();

  const MonitorConfig& config() const { return cfg_; }

 private:
  MonitorConfig cfg_;
  std::array<CounterBank, 2> banks_{};
};

}  // namespace p2sim::hpm
