// The POWER2 performance monitor proper: 22 physical 32-bit counters per
// privilege mode, fed by EventCounts from the core model (or, at level B,
// by scaled kernel signatures).
//
// Hardware fidelity points:
//   * counters are 32 bits wide and wrap silently — at 66.7 MHz the cycle
//     counter wraps every ~64 seconds, which is why the RS2HPM library must
//     sample well below the wrap period (see rs2hpm::ExtendedCounters);
//   * the NAS configuration suffered a monitor implementation error that
//     "prevented the proper reporting of the division operations" —
//     modelled by the `divide_counter_bug` flag (default on, matching the
//     0.0 Mflops-div rows of Table 3);
//   * user-mode and system-mode events accumulate separately.
#pragma once

#include <array>
#include <cstdint>

#include "src/check/annotate.hpp"
#include "src/check/check.hpp"
#include "src/hpm/events.hpp"
#include "src/power2/event_counts.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::hpm {

/// Per-counter 64-bit increments, indexed like CounterBank slots.  The
/// batched accrual path maps a whole interval's events into one of these
/// before touching the wrapping hardware registers.
using CounterAdds = std::array<std::uint64_t, kNumCounters>;

/// One bank of 22 physical counters; arithmetic wraps mod 2^32 like the
/// real 32-bit registers.
///
/// `add`/`add_batch` enforce the multipass-sampling contract: a single
/// increment must stay below one wrap (2^32), or the sampling layer's
/// wrap-delta recovery silently undercounts.  `fold`/`fold_batch` are the
/// wrap-agnostic escape hatch for callers (the closed-form accrual path,
/// wrap-behaviour tests) that track the 64-bit truth separately and only
/// need the register's mod-2^32 residue to stay faithful.
class CounterBank {
 public:
  P2SIM_PAR_SAFE void add(HpmCounter c, std::uint64_t n) {
    P2SIM_CHECK(n < kWrap, "CounterBank::add: increment >= one wrap");
    fold(c, n);
  }
  P2SIM_PAR_SAFE void fold(HpmCounter c, std::uint64_t n) {
    counters_[index_of(c)] =
        static_cast<std::uint32_t>(counters_[index_of(c)] + n);
  }
  P2SIM_PAR_SAFE void add_batch(const CounterAdds& n) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      P2SIM_CHECK(n[i] < kWrap, "CounterBank::add_batch: increment >= wrap");
      counters_[i] = static_cast<std::uint32_t>(counters_[i] + n[i]);
    }
  }
  P2SIM_PAR_SAFE void fold_batch(const CounterAdds& n) {
    for (std::size_t i = 0; i < kNumCounters; ++i)
      counters_[i] = static_cast<std::uint32_t>(counters_[i] + n[i]);
  }
  P2SIM_PAR_SAFE std::uint32_t read(HpmCounter c) const {
    return counters_[index_of(c)];
  }
  P2SIM_PAR_SAFE const std::array<std::uint32_t, kNumCounters>& raw() const {
    return counters_;
  }
  P2SIM_PAR_SAFE void clear() { counters_.fill(0); }

  /// Checkpoint support: raw 32-bit register values round-trip exactly.
  void save_ckpt(util::CkptWriter& w) const {
    for (std::uint32_t c : counters_) w.put_u32(c);
  }
  void restore_ckpt(util::CkptReader& r) {
    for (std::uint32_t& c : counters_) c = r.read_u32("counter_bank.reg");
  }

 private:
  static constexpr std::uint64_t kWrap = 1ULL << 32;
  std::array<std::uint32_t, kNumCounters> counters_{};
};

struct MonitorConfig {
  /// The NAS campaign's hardware bug: divide operations never reach the
  /// fp_div counters (instruction counts in user.fpuN are unaffected).
  bool divide_counter_bug = true;
  /// Which signals the 22 counters record (see hpm::CounterSelection).
  CounterSelection selection = CounterSelection::kNasDefault;
};

class PerformanceMonitor {
 public:
  explicit PerformanceMonitor(const MonitorConfig& cfg = {}) : cfg_(cfg) {}

  /// Accumulates a batch of microarchitectural events into the bank for
  /// the given privilege mode.
  P2SIM_PAR_SAFE void accumulate(const power2::EventCounts& ev,
                                 PrivilegeMode mode);

  /// Maps `ev` onto per-counter increments under this monitor's selection
  /// (+= semantics: callers may fold several event batches into one
  /// CounterAdds).  This is exactly the event-to-slot wiring accumulate()
  /// applies, audited at the same kScaled gate.
  P2SIM_PAR_SAFE void map_events(const power2::EventCounts& ev,
                                 CounterAdds& adds) const;

  /// Batched register update: folds pre-mapped increments into the bank.
  /// Unlike accumulate(), one call may cover an arbitrary stretch of
  /// multipass slices — per-counter totals at or above 2^32 are legal, the
  /// registers keep only the faithful mod-2^32 residue, and the caller
  /// (rs2hpm::ExtendedCounters::accrue) owns the 64-bit truth.
  P2SIM_PAR_SAFE void accumulate_adds(const CounterAdds& adds,
                                      PrivilegeMode mode);

  P2SIM_PAR_SAFE const CounterBank& bank(PrivilegeMode mode) const {
    return banks_[static_cast<std::size_t>(mode)];
  }
  P2SIM_PAR_SAFE void clear();

  const MonitorConfig& config() const { return cfg_; }

  /// Checkpoint support: both privilege-mode banks (config is rebuilt from
  /// the campaign configuration, not serialized).
  void save_ckpt(util::CkptWriter& w) const {
    for (const CounterBank& b : banks_) b.save_ckpt(w);
  }
  void restore_ckpt(util::CkptReader& r) {
    for (CounterBank& b : banks_) b.restore_ckpt(r);
  }

 private:
  MonitorConfig cfg_;
  std::array<CounterBank, 2> banks_{};
};

}  // namespace p2sim::hpm
