#include "src/hpm/monitor.hpp"

#include "src/check/invariants.hpp"

namespace p2sim::hpm {

void PerformanceMonitor::accumulate(const power2::EventCounts& ev,
                                    PrivilegeMode mode) {
  CounterAdds adds{};
  map_events(ev, adds);
  // add_batch keeps the historical per-slice contract: any single
  // accumulate() must stay below one counter wrap per slot.
  banks_[static_cast<std::size_t>(mode)].add_batch(adds);
}

void PerformanceMonitor::map_events(const power2::EventCounts& ev,
                                    CounterAdds& adds) const {
  // Gate at kScaled: batches arriving here may be signature-scaled (each
  // field rounded independently), so only rounding-stable identities apply.
  // Every kScaled rule is a single-field inequality, so auditing a summed
  // batch is exactly as strong as auditing each summand.
  P2SIM_AUDIT_EVENTS(ev, kScaled, "hpm::PerformanceMonitor::map_events");
  adds[index_of(HpmCounter::kUserFxu0)] += ev.fxu0_inst;
  adds[index_of(HpmCounter::kUserFxu1)] += ev.fxu1_inst;
  adds[index_of(HpmCounter::kUserDcacheMiss)] += ev.dcache_miss;
  adds[index_of(HpmCounter::kUserTlbMiss)] += ev.tlb_miss;
  adds[index_of(HpmCounter::kUserCycles)] += ev.cycles;
  adds[index_of(HpmCounter::kUserFpu0)] += ev.fpu0_inst;
  adds[index_of(HpmCounter::kFpAdd0)] += ev.fp_add0;
  adds[index_of(HpmCounter::kFpMul0)] += ev.fp_mul0;
  adds[index_of(HpmCounter::kFpMulAdd0)] += ev.fp_fma0;
  adds[index_of(HpmCounter::kUserFpu1)] += ev.fpu1_inst;
  adds[index_of(HpmCounter::kFpAdd1)] += ev.fp_add1;
  adds[index_of(HpmCounter::kFpMul1)] += ev.fp_mul1;
  adds[index_of(HpmCounter::kFpMulAdd1)] += ev.fp_fma1;
  if (cfg_.selection == CounterSelection::kWaitStates) {
    // The divide slots are rededicated to wait-state signals (the paper's
    // recommended configuration for future deployments).
    adds[index_of(kCommWaitSlot)] += ev.comm_wait_cycles;
    adds[index_of(kIoWaitSlot)] += ev.io_wait_cycles;
  } else if (!cfg_.divide_counter_bug) {
    adds[index_of(HpmCounter::kFpDiv0)] += ev.fp_div0;
    adds[index_of(HpmCounter::kFpDiv1)] += ev.fp_div1;
  }
  adds[index_of(HpmCounter::kUserIcu0)] += ev.icu_type1;
  adds[index_of(HpmCounter::kUserIcu1)] += ev.icu_type2;
  adds[index_of(HpmCounter::kIcacheReload)] += ev.icache_reload;
  adds[index_of(HpmCounter::kDcacheReload)] += ev.dcache_reload;
  adds[index_of(HpmCounter::kDcacheStore)] += ev.dcache_store;
  adds[index_of(HpmCounter::kDmaRead)] += ev.dma_read;
  adds[index_of(HpmCounter::kDmaWrite)] += ev.dma_write;
}

void PerformanceMonitor::accumulate_adds(const CounterAdds& adds,
                                         PrivilegeMode mode) {
  banks_[static_cast<std::size_t>(mode)].fold_batch(adds);
}

void PerformanceMonitor::clear() {
  for (auto& b : banks_) b.clear();
}

}  // namespace p2sim::hpm
