#include "src/hpm/monitor.hpp"

#include "src/check/invariants.hpp"

namespace p2sim::hpm {

void PerformanceMonitor::accumulate(const power2::EventCounts& ev,
                                    PrivilegeMode mode) {
  // Gate at kScaled: batches arriving here may be signature-scaled (each
  // field rounded independently), so only rounding-stable identities apply.
  P2SIM_AUDIT_EVENTS(ev, kScaled, "hpm::PerformanceMonitor::accumulate");
  CounterBank& b = banks_[static_cast<std::size_t>(mode)];
  b.add(HpmCounter::kUserFxu0, ev.fxu0_inst);
  b.add(HpmCounter::kUserFxu1, ev.fxu1_inst);
  b.add(HpmCounter::kUserDcacheMiss, ev.dcache_miss);
  b.add(HpmCounter::kUserTlbMiss, ev.tlb_miss);
  b.add(HpmCounter::kUserCycles, ev.cycles);
  b.add(HpmCounter::kUserFpu0, ev.fpu0_inst);
  b.add(HpmCounter::kFpAdd0, ev.fp_add0);
  b.add(HpmCounter::kFpMul0, ev.fp_mul0);
  b.add(HpmCounter::kFpMulAdd0, ev.fp_fma0);
  b.add(HpmCounter::kUserFpu1, ev.fpu1_inst);
  b.add(HpmCounter::kFpAdd1, ev.fp_add1);
  b.add(HpmCounter::kFpMul1, ev.fp_mul1);
  b.add(HpmCounter::kFpMulAdd1, ev.fp_fma1);
  if (cfg_.selection == CounterSelection::kWaitStates) {
    // The divide slots are rededicated to wait-state signals (the paper's
    // recommended configuration for future deployments).
    b.add(kCommWaitSlot, ev.comm_wait_cycles);
    b.add(kIoWaitSlot, ev.io_wait_cycles);
  } else if (!cfg_.divide_counter_bug) {
    b.add(HpmCounter::kFpDiv0, ev.fp_div0);
    b.add(HpmCounter::kFpDiv1, ev.fp_div1);
  }
  b.add(HpmCounter::kUserIcu0, ev.icu_type1);
  b.add(HpmCounter::kUserIcu1, ev.icu_type2);
  b.add(HpmCounter::kIcacheReload, ev.icache_reload);
  b.add(HpmCounter::kDcacheReload, ev.dcache_reload);
  b.add(HpmCounter::kDcacheStore, ev.dcache_store);
  b.add(HpmCounter::kDmaRead, ev.dma_read);
  b.add(HpmCounter::kDmaWrite, ev.dma_write);
}

void PerformanceMonitor::clear() {
  for (auto& b : banks_) b.clear();
}

}  // namespace p2sim::hpm
