#include "src/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace p2sim::util {
namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
  double span() const { return hi - lo; }
};

Range data_range(const std::vector<Series>& series, bool use_x,
                 bool from_zero) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    const auto& v = use_x ? s.xs : s.ys;
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return {0.0, 1.0};
  if (from_zero) lo = std::min(lo, 0.0);
  if (hi <= lo) hi = lo + 1.0;
  // Pad the top a little so maxima don't sit on the frame.
  hi += (hi - lo) * 0.02;
  return {lo, hi};
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opts) {
  const int w = std::max(opts.width, 10);
  const int h = std::max(opts.height, 4);
  const Range xr = data_range(series, /*use_x=*/true, /*from_zero=*/false);
  const Range yr = data_range(series, /*use_x=*/false, opts.y_from_zero);

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
  auto plot = [&](double x, double y, char g) {
    const int cx = static_cast<int>(std::lround((x - xr.lo) / xr.span() *
                                                (w - 1)));
    const int cy = static_cast<int>(std::lround((y - yr.lo) / yr.span() *
                                                (h - 1)));
    if (cx < 0 || cx >= w || cy < 0 || cy >= h) return;
    canvas[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] =
        g;
  };

  for (const auto& s : series) {
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (opts.connect && i > 0) {
        // Crude interpolation: plot a few intermediate points.
        const int steps = 4;
        for (int k = 1; k < steps; ++k) {
          const double t = static_cast<double>(k) / steps;
          plot(s.xs[i - 1] + (s.xs[i] - s.xs[i - 1]) * t,
               s.ys[i - 1] + (s.ys[i] - s.ys[i - 1]) * t, s.glyph);
        }
      }
      plot(s.xs[i], s.ys[i], s.glyph);
    }
  }

  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  char buf[64];
  for (int r = 0; r < h; ++r) {
    const double yv = yr.hi - (yr.span() * r) / (h - 1);
    std::snprintf(buf, sizeof(buf), "%10.3g |", yv);
    // Label only a few rows to keep the gutter readable.
    if (r == 0 || r == h - 1 || r == h / 2) {
      out += buf;
    } else {
      out += "           |";
    }
    out += canvas[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "           +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
  std::snprintf(buf, sizeof(buf), "%12.4g", xr.lo);
  out += buf;
  out += std::string(static_cast<std::size_t>(std::max(1, w - 14)), ' ');
  std::snprintf(buf, sizeof(buf), "%.4g", xr.hi);
  out += buf;
  out += '\n';
  if (!opts.x_label.empty()) out += "x: " + opts.x_label + "\n";
  if (!opts.y_label.empty()) out += "y: " + opts.y_label + "\n";
  for (const auto& s : series) {
    out += "  [";
    out += s.glyph;
    out += "] " + s.name + "\n";
  }
  return out;
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                        std::string_view title, int width) {
  double hi = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    hi = std::max(hi, v);
    label_w = std::max(label_w, label.size());
  }
  if (hi <= 0.0) hi = 1.0;
  std::string out(title);
  out += '\n';
  char buf[64];
  for (const auto& [label, v] : bars) {
    out += "  " + label + std::string(label_w - label.size(), ' ') + " |";
    const int n = static_cast<int>(std::lround(v / hi * width));
    out += std::string(static_cast<std::size_t>(std::max(0, n)), '#');
    std::snprintf(buf, sizeof(buf), " %.4g", v);
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace p2sim::util
