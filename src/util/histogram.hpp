// Weighted histogram keyed by an integer bucket.  Figures 2 and 3 of the
// paper are histograms over "number of nodes requested"; this container
// accumulates an arbitrary weight (walltime seconds, node-Mflop samples)
// per key and supports per-key statistics.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/util/stats.hpp"

namespace p2sim::util {

/// Accumulates a weight and per-key RunningStats under an integer key.
class KeyedHistogram {
 public:
  void add(std::int64_t key, double weight) {
    auto& cell = cells_[key];
    cell.total += weight;
    cell.stats.add(weight);
  }

  double total(std::int64_t key) const {
    auto it = cells_.find(key);
    return it == cells_.end() ? 0.0 : it->second.total;
  }

  const RunningStats* stats(std::int64_t key) const {
    auto it = cells_.find(key);
    return it == cells_.end() ? nullptr : &it->second.stats;
  }

  std::vector<std::int64_t> keys() const;
  double grand_total() const;
  std::size_t size() const { return cells_.size(); }
  P2SIM_PAR_SAFE bool empty() const { return cells_.empty(); }

  /// Key holding the largest accumulated weight; 0 if empty.  The paper's
  /// "most popular choice of nodes" (16) is exactly this query on Figure 2.
  std::int64_t argmax_total() const;

 private:
  struct Cell {
    double total = 0.0;
    RunningStats stats;
  };
  std::map<std::int64_t, Cell> cells_;
};

}  // namespace p2sim::util
