// Number formatting shared by the text record format and the query
// renderers.
#pragma once

#include <charconv>
#include <string>

namespace p2sim::util {

/// Shortest decimal string that round-trips the exact double
/// (std::to_chars shortest form).  Text exports written with this survive
/// a parse-and-rewrite cycle bit-identically, which is what lets the
/// archive <-> text converters promise lossless round trips.
inline std::string format_double(double v) {
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

}  // namespace p2sim::util
