// A minimal blocking HTTP/1.1 client for the monitoring plane's own use:
// the daemon's self-scrape (--scrape-dump), `campaign_dashboard --connect`,
// the scrape-overhead bench and the server tests.  One request per
// connection ("Connection: close"), bounded by a wall-clock deadline.
#pragma once

#include <cstdint>
#include <string>

namespace p2sim::util {

struct HttpFetch {
  bool ok = false;     // transport worked and a status line was parsed
  int status = 0;      // HTTP status code (0 when !ok)
  std::string body;    // decoded message body
  std::string raw;     // every byte received, verbatim
  std::string error;   // reason when !ok
};

/// GET http://host:port/target with "Connection: close"; reads until the
/// server closes or the deadline passes.  `host` is a dotted-quad IPv4
/// literal (the embedded server only binds loopback).
HttpFetch http_get(const std::string& host, std::uint16_t port,
                   const std::string& target, int timeout_ms = 5000);

/// Sends `bytes` verbatim and collects whatever comes back until close or
/// deadline — the malformed-request / slow-loris probe used by tests.
/// `linger_ms` > 0 sleeps between connect and send (partial-write abuse).
HttpFetch http_raw(const std::string& host, std::uint16_t port,
                   const std::string& bytes, int timeout_ms = 5000,
                   int linger_ms = 0);

}  // namespace p2sim::util
