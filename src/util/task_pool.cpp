#include "src/util/task_pool.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

namespace p2sim::util {

TaskPool::TaskPool(int threads) {
  if (threads < 0) {
    throw std::invalid_argument("TaskPool threads must be >= 0");
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  threads_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::run_shard(
    const std::function<void(std::size_t, std::size_t)>& task, std::size_t n,
    int worker_index) {
  const ShardRange shard = shard_range(n, worker_index, threads_);
  if (shard.empty()) return;
  task(shard.begin, shard.end);
}

void TaskPool::worker_loop(int worker_index) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* task = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (task_ != nullptr && epoch_ != seen_epoch);
      });
      if (stopping_) return;
      seen_epoch = epoch_;
      task = task_;
      n = task_items_;
    }
    std::exception_ptr error;
    try {
      run_shard(*task, n, worker_index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

void TaskPool::run(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& task) {
  if (n == 0) return;
  if (threads_ == 1) {
    task(0, n);  // the serial bypass: no locks, no workers, no barrier
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    task_items_ = n;
    pending_ = threads_ - 1;
    ++epoch_;
  }
  work_ready_.notify_all();
  // The calling thread is worker 0: it always runs the first shard while
  // the pool threads run the rest.
  std::exception_ptr caller_error;
  try {
    run_shard(task, n, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    if (caller_error && !first_error_) first_error_ = std::move(caller_error);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace p2sim::util
