// Streaming statistics used throughout the measurement pipeline: Welford
// running moments (the paper reports averages and standard deviations over
// day samples), windowed moving averages (Figures 1 and 4 plot moving
// averages), and Pearson correlation (Figure 5 is a correlation study).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace p2sim::util {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-window trailing moving average, as used for the "moving average"
/// curves in Figures 1 and 4.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  /// Adds a sample and returns the average of the last min(window, n) values.
  double add(double x);
  double value() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Applies a trailing moving average to a whole series.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window);

/// Pearson correlation coefficient; returns 0 when either series is constant
/// or the series are shorter than two points.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Least-squares slope of y against x; 0 for degenerate inputs.  Used to
/// check the paper's "no trend toward improvement over time" claims.
double linear_slope(std::span<const double> xs, std::span<const double> ys);

/// Quantile by linear interpolation on a copy of the data, q in [0,1].
double quantile(std::span<const double> xs, double q);

}  // namespace p2sim::util
