// A small embedded HTTP/1.1 server for the monitoring plane.
//
// One background thread owns a poll(2) event loop over non-blocking
// sockets: it accepts connections on a loopback listener, parses requests
// incrementally (so a slow or hostile client never blocks anyone else),
// invokes a single user handler per complete request, and streams the
// response back through a per-connection output buffer.  There are no
// third-party dependencies and — deliberately — no locks or atomics: every
// byte of connection state is owned by the loop thread.  start() publishes
// the handler and the bound port before the thread exists, stop() wakes
// the loop through a self-pipe and joins it, and std::thread's
// constructor/join give the only happens-before edges the design needs.
//
// Robustness contract (exercised by tests/util/http_server_test.cpp and
// the monitoring soak):
//   - malformed request line or headers        -> 400, connection closed
//   - request larger than max_request_bytes    -> 413, connection closed
//   - headers not complete within the deadline -> 408, connection closed
//     (slow-loris defence; the deadline re-arms per request)
//   - client disconnect mid-request or mid-response is tolerated silently
//   - keep-alive and pipelined requests are served in arrival order;
//     "Connection: close" (or HTTP/1.0 without keep-alive) is honored
//   - at max_connections, new connections wait in the kernel backlog
//     until a slot frees (backpressure) — they are never accept-and-reset
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace p2sim::util {

/// One parsed request.  Header names are lower-cased at parse time.
struct HttpRequest {
  std::string method;
  std::string target;  // origin-form as received, e.g. "/api/jobs?limit=5"
  std::string path;    // target up to '?'
  std::string query;   // after '?', possibly empty
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup (name must be given in lower case).
  const std::string* header(std::string_view lower_name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  bool close_connection = false;  // force close after this response
};

/// Loop-thread callbacks for observability; default no-ops.  on_request
/// fires once per handled request (including generated 400/408/413) with
/// the wall-clock seconds spent in the user handler; on_connection_delta
/// fires +1 on accept and -1 on close.
class HttpObserver {
 public:
  virtual ~HttpObserver() = default;
  virtual void on_connection_delta(int /*delta*/) {}
  virtual void on_request(const std::string& /*method*/,
                          const std::string& /*path*/, int /*status*/,
                          double /*handler_seconds*/) {}
};

struct HttpServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; see HttpServer::port()
  int max_connections = 64;
  std::size_t max_request_bytes = 1U << 16;
  int header_timeout_ms = 5000;
  HttpObserver* observer = nullptr;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:port, starts the loop thread and returns true; on
  /// failure returns false and, if `error` is non-null, stores the reason.
  /// The handler runs on the loop thread and must not call back into this
  /// server.  Calling start() on a running server fails.
  bool start(const HttpServerConfig& cfg, HttpHandler handler,
             std::string* error = nullptr);

  /// Wakes the loop, closes every connection and joins the thread.
  /// Idempotent; safe on a never-started server.
  void stop();

  bool running() const noexcept { return loop_.joinable(); }

  /// The bound port (resolved at start() even when cfg.port == 0).
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn;
  void loop();

  HttpServerConfig cfg_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::thread loop_;
};

}  // namespace p2sim::util
