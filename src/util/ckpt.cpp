#include "src/util/ckpt.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace p2sim::util {

void CkptWriter::put_f64(double v) {
  tag('d');
  put_le(std::bit_cast<std::uint64_t>(v), 8);
}

void CkptReader::fail(const char* what, const char* why) const {
  std::ostringstream os;
  os << "checkpoint field '" << what << "' at offset " << pos_ << ": " << why;
  throw CkptError(os.str());
}

void CkptReader::expect_tag(char t, const char* what) {
  if (pos_ >= data_.size()) fail(what, "stream truncated before type tag");
  char got = data_[pos_];
  if (got != t) fail(what, "type tag mismatch");
  ++pos_;
}

std::uint64_t CkptReader::read_le(int n, const char* what) {
  if (data_.size() - pos_ < static_cast<std::size_t>(n)) {
    fail(what, "stream truncated inside value");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(n);
  return v;
}

bool CkptReader::read_bool(const char* what) {
  expect_tag('b', what);
  return read_le(1, what) != 0;
}

std::uint8_t CkptReader::read_u8(const char* what) {
  expect_tag('c', what);
  return static_cast<std::uint8_t>(read_le(1, what));
}

std::uint32_t CkptReader::read_u32(const char* what) {
  expect_tag('w', what);
  return static_cast<std::uint32_t>(read_le(4, what));
}

std::uint64_t CkptReader::read_u64(const char* what) {
  expect_tag('W', what);
  return read_le(8, what);
}

std::int32_t CkptReader::read_i32(const char* what) {
  expect_tag('i', what);
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(read_le(4, what)));
}

std::int64_t CkptReader::read_i64(const char* what) {
  expect_tag('I', what);
  return static_cast<std::int64_t>(read_le(8, what));
}

double CkptReader::read_f64(const char* what) {
  expect_tag('d', what);
  return std::bit_cast<double>(read_le(8, what));
}

std::string CkptReader::read_str(const char* what) {
  expect_tag('s', what);
  std::uint64_t n = read_le(8, what);
  if (n > data_.size() - pos_) fail(what, "string length exceeds payload");
  std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void CkptReader::expect_end(const char* what) {
  if (!at_end()) fail(what, "trailing bytes after final field");
}

namespace {

void set_error(std::string* error, const std::string& path, const char* op) {
  if (error == nullptr) return;
  *error = path + ": " + op + ": " + std::strerror(errno);
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_file_durable(const std::string& path, std::string_view data,
                        std::string* error) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, tmp, "open");
    return false;
  }
  if (!write_all(fd, data)) {
    set_error(error, tmp, "write");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    set_error(error, tmp, "fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, tmp, "close");
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, path, "rename");
    ::unlink(tmp.c_str());
    return false;
  }
  // fsync the containing directory so the rename itself is durable.
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = (slash == std::string::npos) ? std::string(".") : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace p2sim::util
