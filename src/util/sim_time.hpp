// Simulated time for the nine-month measurement campaign.
//
// The paper's data pipeline is quantized: the RS2HPM daemon samples every
// 15 minutes (96 intervals/day) and the study spans 270 days (July 1996 -
// March 1997).  SimClock counts whole 15-minute intervals; helpers convert
// between intervals, seconds, days and CPU cycles at the 66.7 MHz POWER2
// clock.
#pragma once

#include <cstdint>
#include <string>

namespace p2sim::util {

/// Machine constants of the NAS SP2 as reported in the paper.
///
/// This is the single home of the 66.7 MHz literal: every other clock name
/// in the tree (telemetry::kClockHz, NodeConfig::clock_hz, the Mflops
/// helpers' defaults) refers back to kHz, and the peak rate is derived
/// from it, so retuning the machine means editing exactly one number.
struct MachineClock {
  /// POWER2 clock in Hz (66.7 MHz).
  static constexpr double kHz = 66.7e6;
  /// Peak flops per cycle: dual FPUs, each retiring one fma (2 flops).
  static constexpr double kPeakFlopsPerCycle = 4.0;
  /// Peak Mflops per node (the paper's 266.8): flops/cycle * MHz.
  static constexpr double kPeakMflopsPerNode = kPeakFlopsPerCycle * kHz / 1e6;
};

/// Seconds per daemon sampling interval (the cron job ran every 15 minutes).
inline constexpr std::int64_t kIntervalSeconds = 15 * 60;
/// Sampling intervals per day.
inline constexpr std::int64_t kIntervalsPerDay = 24 * 3600 / kIntervalSeconds;
/// Length of the measurement campaign in days (Figure 1's x-axis).
inline constexpr std::int64_t kCampaignDays = 270;

/// Cycles elapsed in `seconds` of wall time at the POWER2 clock.
constexpr double cycles_in(double seconds) {
  return seconds * MachineClock::kHz;
}

/// Monotonic simulated clock advancing in 15-minute ticks.
class SimClock {
 public:
  std::int64_t interval() const noexcept { return interval_; }
  std::int64_t day() const noexcept { return interval_ / kIntervalsPerDay; }
  std::int64_t interval_of_day() const noexcept {
    return interval_ % kIntervalsPerDay;
  }
  double seconds() const noexcept {
    return static_cast<double>(interval_) *
           static_cast<double>(kIntervalSeconds);
  }
  void tick() noexcept { ++interval_; }
  void reset() noexcept { interval_ = 0; }

  /// Human-readable "day D, HH:MM" stamp for logs and job records.
  std::string stamp() const;

 private:
  std::int64_t interval_ = 0;
};

/// Day-of-week index (0 = Monday) assuming day 0 is a Monday; used by the
/// demand model to give the workload its weekday/weekend rhythm.
constexpr int day_of_week(std::int64_t day) {
  return static_cast<int>(((day % 7) + 7) % 7);
}

constexpr bool is_weekend(std::int64_t day) { return day_of_week(day) >= 5; }

}  // namespace p2sim::util
