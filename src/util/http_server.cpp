#include "src/util/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>

namespace p2sim::util {
namespace {

// The loop thread is the one place in src/ outside the telemetry clock
// where wall time is legitimate: connection deadlines are a property of
// the real network, not of the simulation (detlint allowlists this file).
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string to_lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

const char* status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Response";
  }
}

std::string serialize(const HttpResponse& r, bool close) {
  std::string out;
  out.reserve(r.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += status_reason(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += close ? "\r\nConnection: close\r\n\r\n"
               : "\r\nConnection: keep-alive\r\n\r\n";
  out += r.body;
  return out;
}

enum class Parse { kNeedMore, kOk, kError };

/// Incremental parse of the front of `in`.  On kOk fills `req` and sets
/// `consumed` to the bytes to drop; on kError sets `err_status` (400 or
/// 413).  kNeedMore with oversized buffered input is promoted to 413.
Parse parse_request(const std::string& in, std::size_t max_bytes,
                    HttpRequest* req, std::size_t* consumed,
                    int* err_status) {
  const std::size_t hdr_end = in.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    if (in.size() > max_bytes) {
      *err_status = 413;
      return Parse::kError;
    }
    return Parse::kNeedMore;
  }
  if (hdr_end + 4 > max_bytes) {
    *err_status = 413;
    return Parse::kError;
  }
  // Request line: METHOD SP TARGET SP HTTP/1.x
  const std::size_t line_end = in.find("\r\n");
  const std::string line = in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    *err_status = 400;
    return Parse::kError;
  }
  req->method = line.substr(0, sp1);
  req->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req->version = line.substr(sp2 + 1);
  if (req->method.empty() || req->target.empty() || req->target[0] != '/' ||
      req->version.rfind("HTTP/1.", 0) != 0) {
    *err_status = 400;
    return Parse::kError;
  }
  for (char c : req->method) {
    if (std::isupper(static_cast<unsigned char>(c)) == 0) {
      *err_status = 400;
      return Parse::kError;
    }
  }
  const std::size_t q = req->target.find('?');
  req->path = req->target.substr(0, q);
  req->query =
      q == std::string::npos ? std::string() : req->target.substr(q + 1);
  // Header fields.
  req->headers.clear();
  std::size_t pos = line_end + 2;
  while (pos < hdr_end) {
    std::size_t eol = in.find("\r\n", pos);
    if (eol > hdr_end) eol = hdr_end;
    const std::string hline = in.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = hline.find(':');
    if (colon == std::string::npos || colon == 0) {
      *err_status = 400;
      return Parse::kError;
    }
    std::string name = hline.substr(0, colon);
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      *err_status = 400;
      return Parse::kError;
    }
    std::string value = hline.substr(colon + 1);
    const std::size_t b = value.find_first_not_of(" \t");
    const std::size_t e = value.find_last_not_of(" \t");
    value = b == std::string::npos ? std::string()
                                   : value.substr(b, e - b + 1);
    req->headers.emplace_back(to_lower(std::move(name)), std::move(value));
  }
  // Body, when Content-Length is present.
  std::size_t body_len = 0;
  if (const std::string* cl = req->header("content-length")) {
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos ||
        cl->size() > 9) {
      *err_status = 400;
      return Parse::kError;
    }
    body_len = static_cast<std::size_t>(std::stoul(*cl));
    if (hdr_end + 4 + body_len > max_bytes) {
      *err_status = 413;
      return Parse::kError;
    }
  }
  if (in.size() < hdr_end + 4 + body_len) return Parse::kNeedMore;
  req->body = in.substr(hdr_end + 4, body_len);
  *consumed = hdr_end + 4 + body_len;
  return Parse::kOk;
}

bool wants_close(const HttpRequest& req) {
  const std::string* conn = req.header("connection");
  const std::string value = conn == nullptr ? std::string() : to_lower(*conn);
  if (value.find("close") != std::string::npos) return true;
  if (req.version == "HTTP/1.0") {
    return value.find("keep-alive") == std::string::npos;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

struct HttpServer::Conn {
  int fd = -1;
  std::string in;
  std::string out;
  bool close_after_out = false;
  bool peer_closed = false;
  Clock::time_point deadline;
};

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(const HttpServerConfig& cfg, HttpHandler handler,
                       std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = std::string(what) + ": " + strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    listen_fd_ = wake_rd_ = wake_wr_ = -1;
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) return fail("pipe");
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  if (!set_nonblocking(listen_fd_) || !set_nonblocking(wake_rd_)) {
    return fail("fcntl");
  }
  port_ = ntohs(addr.sin_port);
  cfg_ = cfg;
  handler_ = std::move(handler);
  loop_ = std::thread(&HttpServer::loop, this);
  return true;
}

void HttpServer::stop() {
  if (!loop_.joinable()) return;
  const char wake = 'q';
  // A full pipe already guarantees a pending wake-up; the result of this
  // extra byte is irrelevant either way.
  (void)!::write(wake_wr_, &wake, 1);
  loop_.join();
  ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
  port_ = 0;
  handler_ = nullptr;
}

void HttpServer::loop() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<pollfd> fds;
  const auto timeout = std::chrono::milliseconds(
      cfg_.header_timeout_ms > 0 ? cfg_.header_timeout_ms : 5000);

  // Handles a complete request already parsed from conn input; returns the
  // serialized response and records it with the observer.
  auto dispatch = [this](Conn& c, const HttpRequest& req) {
    const Clock::time_point t0 = Clock::now();
    HttpResponse resp;
    if (handler_) {
      try {
        resp = handler_(req);
      } catch (...) {
        resp = HttpResponse{};
        resp.status = 500;
        resp.body = "internal error\n";
      }
    } else {
      resp.status = 404;
      resp.body = "no handler\n";
    }
    const double secs = seconds_between(t0, Clock::now());
    const bool close = resp.close_connection || wants_close(req);
    c.out += serialize(resp, close);
    c.close_after_out = c.close_after_out || close;
    if (cfg_.observer != nullptr) {
      cfg_.observer->on_request(req.method, req.path, resp.status, secs);
    }
  };

  auto fail_request = [this](Conn& c, int status) {
    HttpResponse resp;
    resp.status = status;
    resp.body = std::string(status_reason(status)) + "\n";
    c.out += serialize(resp, /*close=*/true);
    c.close_after_out = true;
    if (cfg_.observer != nullptr) {
      cfg_.observer->on_request("", "", status, 0.0);
    }
  };

  for (;;) {
    fds.clear();
    fds.push_back(pollfd{wake_rd_, POLLIN, 0});
    // At capacity the listener's readiness is uninteresting (accepting is
    // deferred until a slot frees); masking it keeps poll() from spinning.
    const bool at_capacity =
        static_cast<int>(conns.size()) >= cfg_.max_connections;
    fds.push_back(
        pollfd{listen_fd_, static_cast<short>(at_capacity ? 0 : POLLIN), 0});
    for (const auto& c : conns) {
      short events = POLLIN;
      if (!c->out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c->fd, events, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc < 0 && errno != EINTR) break;
    if ((fds[0].revents & POLLIN) != 0) break;  // stop() wake-up

    const Clock::time_point now = Clock::now();

    if ((fds[1].revents & POLLIN) != 0) {
      // Accept only up to capacity.  Beyond it, connections stay queued in
      // the kernel backlog until a slot frees — backpressure, never an
      // accept-and-reset that a client would see as a dropped request.
      while (static_cast<int>(conns.size()) < cfg_.max_connections) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->deadline = now + timeout;
        conns.push_back(std::move(conn));
        if (cfg_.observer != nullptr) cfg_.observer->on_connection_delta(1);
      }
    }

    // Only the connections that were present when `fds` was built have a
    // pollfd entry; connections accepted above are served next iteration.
    const std::size_t polled = fds.size() - 2;
    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = *conns[i];
      const short revents = fds[i + 2].revents;
      bool dead = (revents & (POLLERR | POLLNVAL)) != 0;

      if (!dead && (revents & (POLLIN | POLLHUP)) != 0) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            c.peer_closed = true;
          } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            dead = true;
          }
          break;
        }
      }

      // Serve every complete pipelined request already buffered.
      while (!dead && !c.close_after_out) {
        HttpRequest req;
        std::size_t consumed = 0;
        int err_status = 0;
        const Parse p = parse_request(c.in, cfg_.max_request_bytes, &req,
                                      &consumed, &err_status);
        if (p == Parse::kNeedMore) break;
        if (p == Parse::kError) {
          fail_request(c, err_status);
          break;
        }
        c.in.erase(0, consumed);
        dispatch(c, req);
        c.deadline = now + timeout;  // re-arm per served request
      }

      if (!dead && !c.out.empty() &&
          (revents & (POLLOUT | POLLIN | POLLHUP)) != 0) {
        const ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
          c.out.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          dead = true;  // client went away mid-response; tolerated
        }
      }

      if (!dead && c.out.empty() && (c.close_after_out || c.peer_closed)) {
        dead = true;
      }
      if (!dead && now >= c.deadline) {
        if (c.in.empty() && c.out.empty()) {
          dead = true;  // idle keep-alive connection; close silently
        } else if (c.out.empty()) {
          fail_request(c, 408);  // slow-loris: partial request, no progress
        }
        c.deadline = now + timeout;
      }
      if (dead) {
        ::close(c.fd);
        c.fd = -1;
        if (cfg_.observer != nullptr) cfg_.observer->on_connection_delta(-1);
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->fd < 0;
                               }),
                conns.end());
  }

  for (const auto& c : conns) {
    ::close(c->fd);
    if (cfg_.observer != nullptr) cfg_.observer->on_connection_delta(-1);
  }
}

}  // namespace p2sim::util
