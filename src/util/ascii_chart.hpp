// Terminal rendering of the paper's figures.  The bench binaries regenerate
// each figure as (a) a CSV series and (b) an ASCII chart so the shape of the
// result — the >64-node collapse, the flat moving average, the Figure 5
// anti-correlation — is visible directly in the bench output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace p2sim::util {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
};

/// Chart configuration: canvas size and axis labels.
struct ChartOptions {
  int width = 72;       ///< plot area columns (excluding axis gutter)
  int height = 20;      ///< plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = true;  ///< anchor the y axis at zero (paper style)
  bool connect = false;     ///< draw crude line segments between points
};

/// Renders a scatter / line chart of the series onto a character canvas.
/// All series share axes; ranges are computed from the data.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opts);

/// Renders a vertical-bar histogram: one bar per (label, value).
std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                        std::string_view title, int width = 50);

}  // namespace p2sim::util
