#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/check/check.hpp"

namespace p2sim::util {

void RunningStats::add(double x) noexcept {
  P2SIM_CHECK(!std::isnan(x), "RunningStats input must not be NaN");
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

MovingAverage::MovingAverage(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

double MovingAverage::add(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > window_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  n_ = buf_.size();
  return value();
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  MovingAverage ma(window);
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(ma.add(x));
  return out;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double linear_slope(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace p2sim::util
