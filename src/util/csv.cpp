#include "src/util/csv.hpp"

#include <cinttypes>
#include <cstdio>

namespace p2sim::util {

std::string csv_escape(std::string_view s) {
  const bool needs_quote =
      s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::field(std::string_view s) {
  if (!at_row_start_) out_ << ',';
  out_ << csv_escape(s);
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return field(std::string_view(buf));
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return field(std::string_view(buf));
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return field(std::string_view(buf));
}

void CsvWriter::endrow() {
  out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  endrow();
}

}  // namespace p2sim::util
