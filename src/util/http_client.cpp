#include "src/util/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace p2sim::util {
namespace {

// Wall time governs the client deadline — network I/O, not simulation
// (detlint allowlists this file alongside the server).
using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

HttpFetch fail(HttpFetch f, const char* what) {
  f.ok = false;
  f.error = std::string(what) + ": " + strerror(errno);
  return f;
}

HttpFetch exchange(const std::string& host, std::uint16_t port,
                   const std::string& bytes, int timeout_ms, int linger_ms) {
  HttpFetch f;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::move(f), "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    f.error = "bad host literal: " + host;
    return f;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return fail(std::move(f), "connect");
  }
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail(std::move(f), "send");
    }
    sent += static_cast<std::size_t>(n);
  }
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ms = remaining_ms(deadline);
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      ::close(fd);
      f.error = rc == 0 ? "timeout" : std::string("poll: ") + strerror(errno);
      return f;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      f.raw.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    break;  // orderly close (n == 0) or hard reset: parse what we have
  }
  ::close(fd);
  // Parse the status line and strip the header block.
  const std::size_t hdr_end = f.raw.find("\r\n\r\n");
  if (f.raw.rfind("HTTP/1.", 0) != 0 || hdr_end == std::string::npos) {
    f.error = "short or non-HTTP response";
    return f;
  }
  const std::size_t sp = f.raw.find(' ');
  if (sp == std::string::npos || sp + 4 > f.raw.size()) {
    f.error = "bad status line";
    return f;
  }
  f.status = std::atoi(f.raw.c_str() + sp + 1);
  f.body = f.raw.substr(hdr_end + 4);
  f.ok = f.status > 0;
  return f;
}

}  // namespace

HttpFetch http_get(const std::string& host, std::uint16_t port,
                   const std::string& target, int timeout_ms) {
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  return exchange(host, port, req, timeout_ms, /*linger_ms=*/0);
}

HttpFetch http_raw(const std::string& host, std::uint16_t port,
                   const std::string& bytes, int timeout_ms, int linger_ms) {
  return exchange(host, port, bytes, timeout_ms, linger_ms);
}

}  // namespace p2sim::util
