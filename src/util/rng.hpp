// Deterministic pseudo-random number generation for the simulator.
//
// Everything in p2sim must be reproducible from a single master seed: the
// nine-month workload run, per-job perturbations, and microarchitectural
// jitter (e.g. the 36-54 cycle TLB refill window) all derive their streams
// from here.  We implement splitmix64 (for seeding / stream splitting) and
// xoshiro256** (the workhorse generator) rather than relying on the
// unspecified distributions of <random>, so results are bit-identical across
// standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

#include "src/check/annotate.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::util {

// Lane streams draw from these generators inside the parallel
// region; every function here is pure state-in/state-out on the
// generator object itself.
P2SIM_PAR_SAFE_FILE;

/// splitmix64: tiny generator used to expand a 64-bit seed into independent
/// substreams.  Passes BigCrush when used as specified by Vigna.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state via splitmix64, as recommended by the
  /// authors (avoids the all-zero state for every seed).
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9d2c5680u) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.  Uses Lemire's method
  /// (multiply-shift with rejection) for unbiased bounded output.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (deterministic, stateless between calls
  /// except for the cached spare value).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`.
  double lognormal_median(double median, double sigma) noexcept;

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Poisson-distributed count (Knuth's method; intended for small means
  /// such as per-interval arrival counts).
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator; used to give each job / node /
  /// kernel its own stream so that adding a consumer never perturbs others.
  Xoshiro256StarStar split(std::uint64_t tag) noexcept;

  /// Checkpoint support: the full generator state (four state words plus
  /// the Box-Muller spare) round-trips exactly, so a restored stream
  /// continues bit-identically to the uninterrupted one.
  void save_ckpt(CkptWriter& w) const {
    for (std::uint64_t s : state_) w.put_u64(s);
    w.put_f64(spare_normal_);
    w.put_bool(has_spare_);
  }
  void restore_ckpt(CkptReader& r) {
    for (std::uint64_t& s : state_) s = r.read_u64("rng.state");
    spare_normal_ = r.read_f64("rng.spare_normal");
    has_spare_ = r.read_bool("rng.has_spare");
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Samples an index from a discrete weight table (weights need not be
/// normalized; negative weights are treated as zero).  Returns weights.size()
/// only if every weight is zero.
std::size_t sample_discrete(Xoshiro256StarStar& rng,
                            std::span<const double> weights) noexcept;

}  // namespace p2sim::util
