// Small checksums shared by the text persistence formats (record_io v2,
// the signature store).  FNV-1a is not cryptographic: it detects the
// truncation/bit-rot/hand-edit class of corruption these formats care
// about, nothing more.
#pragma once

#include <cstdint>
#include <string_view>

namespace p2sim::util {

inline std::uint32_t fnv1a32(std::string_view data) {
  std::uint32_t h = 0x811c9dc5u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x01000193u;
  }
  return h;
}

/// 64-bit variant used by the binary checkpoint container, where the
/// payload is large enough that 32 bits of collision margin feel thin.
inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

/// FNV-1a-64 over little-endian 64-bit words (the tail is zero-padded to a
/// whole word).  The multiply chain advances once per word instead of once
/// per byte, which is what lets the columnar archive verify a scanned
/// column at decode speed; it detects the same truncation/bit-rot class as
/// the byte-wise form, it is just a different (and ~8x cheaper) member of
/// the FNV family.
inline std::uint64_t fnv1a64_words(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b) {
      w |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[i + static_cast<std::size_t>(b)]))
           << (8 * b);
    }
    h ^= w;
    h *= 0x00000100000001b3ULL;
  }
  if (i < data.size()) {
    std::uint64_t w = 0;
    for (int b = 0; i < data.size(); ++i, ++b) {
      w |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]))
           << (8 * b);
    }
    h ^= w;
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

}  // namespace p2sim::util
