// Small checksums shared by the text persistence formats (record_io v2,
// the signature store).  FNV-1a is not cryptographic: it detects the
// truncation/bit-rot/hand-edit class of corruption these formats care
// about, nothing more.
#pragma once

#include <cstdint>
#include <string_view>

namespace p2sim::util {

inline std::uint32_t fnv1a32(std::string_view data) {
  std::uint32_t h = 0x811c9dc5u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x01000193u;
  }
  return h;
}

/// 64-bit variant used by the binary checkpoint container, where the
/// payload is large enough that 32 bits of collision margin feel thin.
inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

}  // namespace p2sim::util
