#include "src/util/histogram.hpp"

namespace p2sim::util {

std::vector<std::int64_t> KeyedHistogram::keys() const {
  std::vector<std::int64_t> out;
  out.reserve(cells_.size());
  for (const auto& [k, v] : cells_) out.push_back(k);
  return out;
}

double KeyedHistogram::grand_total() const {
  double t = 0.0;
  for (const auto& [k, v] : cells_) t += v.total;
  return t;
}

std::int64_t KeyedHistogram::argmax_total() const {
  std::int64_t best_key = 0;
  double best = -1.0;
  for (const auto& [k, v] : cells_) {
    if (v.total > best) {
      best = v.total;
      best_key = k;
    }
  }
  return best_key;
}

}  // namespace p2sim::util
