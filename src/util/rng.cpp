#include "src/util/rng.hpp"

#include <cmath>

#include "src/check/annotate.hpp"

namespace p2sim::util {

P2SIM_PAR_SAFE_FILE;

std::uint64_t Xoshiro256StarStar::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256StarStar::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Xoshiro256StarStar::lognormal_median(double median,
                                            double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

double Xoshiro256StarStar::exponential(double mean) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::uint64_t Xoshiro256StarStar::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation keeps the loop bounded for large means.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  double p = 1.0;
  std::uint64_t k = 0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

Xoshiro256StarStar Xoshiro256StarStar::split(std::uint64_t tag) noexcept {
  // Mix the parent's next output with the tag through splitmix64 so children
  // with different tags are decorrelated even for adjacent tags.
  SplitMix64 sm(next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
  return Xoshiro256StarStar(sm.next());
}

std::size_t sample_discrete(Xoshiro256StarStar& rng,
                            std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  // Floating-point slop: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

}  // namespace p2sim::util
