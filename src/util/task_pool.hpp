// A deterministic worker pool for embarrassingly parallel node loops.
//
// The campaign driver advances 144 per-node lanes every 15-minute interval;
// the lanes share no state, so the loop parallelizes with a cheap serial
// merge (the structure ScALPEL and the LIKWID stack exploit for per-node
// monitoring pipelines).  TaskPool provides exactly that shape: a fixed set
// of std::thread workers, *static* sharding — worker w of t always owns the
// contiguous index range [n*w/t, n*(w+1)/t) — and a full barrier per
// dispatch.  Because the shard map depends only on (n, t) and the lanes are
// independent, the work a given index receives is identical for every
// thread count, which is what makes "bit-identical for threads ∈ {1, 4, N}"
// a structural property rather than a hope.
//
// threads == 1 is the explicit serial bypass: no workers are spawned, no
// locks are taken, and run() invokes the task inline — a TaskPool(1) build
// is the pre-pool serial driver, not a pool with one worker.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/check/annotate.hpp"

namespace p2sim::util {

/// Half-open index range [begin, end) owned by one worker.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  P2SIM_PAR_SAFE bool empty() const noexcept { return begin >= end; }
};

/// The static shard of `n` items owned by `worker` of `workers`: contiguous,
/// sizes differing by at most one, and a pure function of (n, worker,
/// workers) — never of scheduling order.
constexpr ShardRange shard_range(std::size_t n, int worker,
                                 int workers) noexcept {
  const auto w = static_cast<std::size_t>(worker);
  const auto t = static_cast<std::size_t>(workers);
  return {n * w / t, n * (w + 1) / t};
}

class TaskPool {
 public:
  /// threads >= 2 spawns threads-1 workers (the calling thread runs shard
  /// 0); threads == 1 runs everything inline; threads == 0 means one per
  /// hardware core.  Throws std::invalid_argument on negative counts.
  explicit TaskPool(int threads = 1);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const noexcept { return threads_; }

  /// Runs task(begin, end) once per shard of [0, n) and returns only when
  /// every shard has finished (a full barrier: everything the shards wrote
  /// happens-before the return).  The first exception any shard throws is
  /// rethrown here after the barrier.  Not reentrant: shards must not call
  /// run() on the same pool.
  P2SIM_SERIAL_ONLY void run(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& task);

 private:
  void worker_loop(int worker_index);
  void run_shard(const std::function<void(std::size_t, std::size_t)>& task,
                 std::size_t n, int worker_index);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Dispatch slot, valid while pending_ > 0.  epoch_ increments once per
  // run() so a worker can tell a fresh dispatch from the one it just ran.
  const std::function<void(std::size_t, std::size_t)>* task_
      P2SIM_GUARDED_BY(mutex_) = nullptr;
  std::size_t task_items_ P2SIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t epoch_ P2SIM_GUARDED_BY(mutex_) = 0;
  int pending_ P2SIM_GUARDED_BY(mutex_) = 0;
  bool stopping_ P2SIM_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ P2SIM_GUARDED_BY(mutex_);
};

}  // namespace p2sim::util
