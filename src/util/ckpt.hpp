// Binary checkpoint primitives: a type-tagged little-endian stream format
// plus torn-write-proof file persistence.
//
// Every value written by CkptWriter carries a one-byte type tag, so a
// reader that drifts out of sync (version skew, truncation, bit rot) fails
// immediately with a precise CkptError naming the field and byte offset
// instead of silently reinterpreting garbage.  The encoding is fixed-width
// little-endian regardless of host, so checkpoints are portable and their
// checksums stable.
//
// File persistence follows the classic crash-consistency discipline: write
// the full image to `<path>.tmp`, fsync the file, rename over `<path>`,
// fsync the directory.  A crash at any point leaves either the old
// complete file or the new complete file — never a torn hybrid visible
// under the real name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace p2sim::util {

/// Raised by CkptReader on any malformed input: truncation, a type-tag
/// mismatch, an oversized string, or trailing bytes.  The message always
/// names the field being read and the byte offset of the failure.
class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends type-tagged values to an in-memory byte buffer.
class CkptWriter {
 public:
  void put_bool(bool v) {
    tag('b');
    buf_.push_back(v ? '\1' : '\0');
  }
  void put_u8(std::uint8_t v) {
    tag('c');
    buf_.push_back(static_cast<char>(v));
  }
  void put_u32(std::uint32_t v) {
    tag('w');
    put_le(v, 4);
  }
  void put_u64(std::uint64_t v) {
    tag('W');
    put_le(v, 8);
  }
  void put_i32(std::int32_t v) {
    tag('i');
    put_le(static_cast<std::uint32_t>(v), 4);
  }
  void put_i64(std::int64_t v) {
    tag('I');
    put_le(static_cast<std::uint64_t>(v), 8);
  }
  void put_f64(double v);
  void put_str(std::string_view s) {
    tag('s');
    put_le(s.size(), 8);
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  void tag(char t) { buf_.push_back(t); }
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// Consumes a CkptWriter stream, validating the type tag of every value.
/// Each read names its field; failures throw CkptError with field + offset.
class CkptReader {
 public:
  explicit CkptReader(std::string_view data) : data_(data) {}

  bool read_bool(const char* what);
  std::uint8_t read_u8(const char* what);
  std::uint32_t read_u32(const char* what);
  std::uint64_t read_u64(const char* what);
  std::int32_t read_i32(const char* what);
  std::int64_t read_i64(const char* what);
  double read_f64(const char* what);
  std::string read_str(const char* what);

  bool at_end() const { return pos_ == data_.size(); }
  /// Throws CkptError unless the whole stream has been consumed.
  void expect_end(const char* what);
  std::size_t offset() const { return pos_; }

 private:
  [[noreturn]] void fail(const char* what, const char* why) const;
  void expect_tag(char t, const char* what);
  std::uint64_t read_le(int n, const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Durable whole-file replacement: temp file + fsync + atomic rename +
/// directory fsync.  Returns true on success; on failure returns false and,
/// when `error` is non-null, stores a one-line reason.  The target is never
/// left torn: either the old contents or the new contents are visible.
bool write_file_durable(const std::string& path, std::string_view data,
                        std::string* error = nullptr);

}  // namespace p2sim::util
