#include "src/util/sim_time.hpp"

#include <cstdio>

namespace p2sim::util {

std::string SimClock::stamp() const {
  const std::int64_t secs_of_day = interval_of_day() * kIntervalSeconds;
  const int hh = static_cast<int>(secs_of_day / 3600);
  const int mm = static_cast<int>((secs_of_day % 3600) / 60);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "day %lld, %02d:%02d",
                static_cast<long long>(day()), hh, mm);
  return buf;
}

}  // namespace p2sim::util
