// Minimal CSV emission.  Every bench binary writes the series behind its
// table/figure as CSV (alongside the ASCII rendering) so results can be
// re-plotted outside the repository.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace p2sim::util {

/// Streams rows to an ostream, quoting fields only when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter& field(std::string_view s);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  /// Ends the current row.
  void endrow();

  /// Convenience: write a full header / row at once.
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  bool at_row_start_ = true;
};

/// Quotes a field per RFC 4180 if it contains a comma, quote or newline.
std::string csv_escape(std::string_view s);

}  // namespace p2sim::util
