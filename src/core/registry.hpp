// The experiment registry: every reproduction this repository can run,
// addressable by name.
//
// Each paper artifact (a table, a figure, the loss audit, the fault
// campaign) is registered as a named Experiment that renders its result
// from a caller-supplied Sp2Simulation.  Tools iterate experiments() to
// enumerate what exists; examples/run_experiment resolves a name from the
// command line.  Experiments share the caller's simulation, so running
// several reuses one campaign.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/simulation.hpp"

namespace p2sim::core {

struct Experiment {
  std::string name;         ///< command-line handle, e.g. "table2"
  std::string description;  ///< one line, shown by list output
  /// Renders the experiment's formatted result.  May run the campaign
  /// (lazily, via the simulation) or derive a second campaign from the
  /// simulation's config (the fault campaign does).
  std::function<std::string(Sp2Simulation&)> run;
};

/// All registered experiments, in presentation order.
const std::vector<Experiment>& experiments();

/// Finds an experiment by name; nullptr when unknown.
const Experiment* find_experiment(std::string_view name);

}  // namespace p2sim::core
