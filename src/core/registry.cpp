#include "src/core/registry.hpp"

#include <sstream>

#include "src/analysis/report.hpp"

namespace p2sim::core {
namespace {

std::string run_fig1(Sp2Simulation& sim) {
  const analysis::Fig1Series f = sim.fig1();
  std::ostringstream os;
  os << "Figure 1 (system performance history): " << f.day.size()
     << " days, mean " << f.mean_gflops << " Gflops, peak "
     << f.max_daily_gflops << " Gflops, mean utilization "
     << f.mean_utilization << ", trend slope " << f.trend_slope
     << " Gflops/day\n";
  return os.str();
}

std::string run_fig2(Sp2Simulation& sim) {
  const analysis::Fig2Series f = sim.fig2();
  std::ostringstream os;
  os << "Figure 2 (walltime by node count): most popular request "
     << f.most_popular_nodes << " nodes; fraction of walltime beyond 64 "
     << f.walltime_beyond_64_fraction << "\n";
  for (const analysis::Fig2Bin& b : f.bins) {
    os << "  " << b.nodes << " nodes: " << b.jobs << " jobs, "
       << b.total_walltime_s << " s\n";
  }
  return os.str();
}

std::string run_fig3(Sp2Simulation& sim) {
  const analysis::Fig3Series f = sim.fig3();
  std::ostringstream os;
  os << "Figure 3 (Mflops/node by node count): mean <=64 nodes "
     << f.mean_upto_64 << ", beyond 64 " << f.mean_beyond_64 << "\n";
  return os.str();
}

std::string run_fig4(Sp2Simulation& sim) {
  const analysis::Fig4Series f = sim.fig4();
  std::ostringstream os;
  os << "Figure 4 (" << f.node_count << "-node job history): "
     << f.job_seq.size() << " jobs, mean " << f.mean << " Mflops, stddev "
     << f.stddev << ", trend slope " << f.trend_slope << "\n";
  return os.str();
}

std::string run_fig5(Sp2Simulation& sim) {
  const analysis::Fig5Series f = sim.fig5();
  std::ostringstream os;
  os << "Figure 5 (paging diagnostic): " << f.mflops_per_node.size()
     << " days, correlation " << f.correlation << "\n";
  return os.str();
}

std::string run_fault_campaign(Sp2Simulation& sim) {
  // Re-run the caller's campaign with the reference outage profile and
  // show what the degradation-tolerant pipeline recovers.
  Sp2Config faulted_cfg = sim.config();
  faulted_cfg.faults() = fault::FaultConfig::reference();
  Sp2Simulation faulted(faulted_cfg);
  std::ostringstream os;
  os << "=== Fault-free Table 2 ===\n"
     << analysis::format_table2(sim.table2()) << '\n'
     << "=== Faulted Table 2 (reference outage profile) ===\n"
     << analysis::format_table2(faulted.table2()) << '\n'
     << analysis::format_measurement_loss(faulted.measurement_loss());
  return os.str();
}

std::vector<Experiment> build_registry() {
  std::vector<Experiment> out;
  out.push_back({"table2", "sustained system rates (Mips/Mops/Mflops)",
                 [](Sp2Simulation& s) {
                   return analysis::format_table2(s.table2());
                 }});
  out.push_back({"table3", "detailed per-node rate breakdown",
                 [](Sp2Simulation& s) {
                   return analysis::format_table3(s.table3());
                 }});
  out.push_back({"table4", "memory-hierarchy ratios vs reference kernels",
                 [](Sp2Simulation& s) {
                   return analysis::format_table4(s.table4());
                 }});
  out.push_back({"fig1", "daily Gflops / utilization history", run_fig1});
  out.push_back({"fig2", "batch walltime by node count", run_fig2});
  out.push_back({"fig3", "Mflops per node by node count", run_fig3});
  out.push_back({"fig4", "16-node job performance history", run_fig4});
  out.push_back({"fig5", "system/user FXU paging diagnostic", run_fig5});
  out.push_back({"report", "the full formatted measurement report",
                 [](Sp2Simulation& s) {
                   return analysis::format_report(analysis::build_report(
                       s.campaign(), s.config().table_min_gflops));
                 }});
  out.push_back({"loss", "measurement-loss audit of the campaign",
                 [](Sp2Simulation& s) {
                   return analysis::format_measurement_loss(
                       s.measurement_loss());
                 }});
  out.push_back({"fault_campaign",
                 "reference fault campaign: faulted Table 2 + loss report",
                 run_fault_campaign});
  return out;
}

}  // namespace

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> registry = build_registry();
  return registry;
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment& e : experiments()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace p2sim::core
