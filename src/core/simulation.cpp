#include "src/core/simulation.hpp"

#include "src/check/check.hpp"

namespace p2sim::core {

Sp2Config Sp2Config::small(std::int64_t days, int nodes) {
  Sp2Config cfg;
  cfg.driver.days = days;
  cfg.driver.num_nodes = nodes;
  // Scale demand with machine size so utilization stays in the paper's
  // regime.
  cfg.driver.jobs_per_day =
      cfg.driver.jobs_per_day * nodes / 144.0;
  // Narrow machines cannot host the widest requests.
  auto& choices = cfg.driver.jobgen.node_choices;
  auto& weights = cfg.driver.jobgen.node_weights;
  std::vector<int> nc;
  std::vector<double> nw;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i] <= nodes) {
      nc.push_back(choices[i]);
      nw.push_back(weights[i]);
    }
  }
  choices = std::move(nc);
  weights = std::move(nw);
  cfg.driver.sched.drain_threshold_nodes =
      std::min(cfg.driver.sched.drain_threshold_nodes, nodes / 2);
  // Keep the Table 2/3 day filter at the same per-node severity as the
  // paper's 2.0 Gflops on 144 nodes.
  cfg.table_min_gflops = 2.0 * nodes / 144.0;
  return cfg;
}

Sp2Simulation::Sp2Simulation(Sp2Config cfg) : cfg_(std::move(cfg)) {}

const workload::CampaignResult& Sp2Simulation::campaign() {
  if (!result_.has_value()) {
    result_ = workload::run_campaign(cfg_.driver);
    P2SIM_CHECK(result_->mean_utilization() >= 0.0 &&
                    result_->mean_utilization() <= 1.000001,
                "campaign utilization must be a fraction of node-time");
  }
  return *result_;
}

const std::vector<analysis::DayStats>& Sp2Simulation::days() {
  if (!days_.has_value()) {
    days_ = analysis::daily_stats(campaign());
  }
  return *days_;
}

analysis::Table2 Sp2Simulation::table2() {
  return analysis::make_table2(days(), cfg_.table_min_gflops,
                               cfg_.table_min_coverage);
}

analysis::Table3 Sp2Simulation::table3() {
  return analysis::make_table3(days(), cfg_.table_min_gflops,
                               cfg_.table_min_coverage);
}

analysis::Table4 Sp2Simulation::table4() {
  return analysis::make_table4(days(), cfg_.driver.core,
                               cfg_.table_min_gflops,
                               cfg_.table_min_coverage);
}

analysis::Fig1Series Sp2Simulation::fig1(std::size_t ma_window) {
  return analysis::make_fig1(days(), ma_window);
}

analysis::Fig2Series Sp2Simulation::fig2() {
  return analysis::make_fig2(campaign().jobs);
}

analysis::Fig3Series Sp2Simulation::fig3() {
  return analysis::make_fig3(campaign().jobs);
}

analysis::Fig4Series Sp2Simulation::fig4(int node_count) {
  return analysis::make_fig4(campaign().jobs, node_count);
}

analysis::Fig5Series Sp2Simulation::fig5() {
  return analysis::make_fig5(days());
}

analysis::MeasurementLoss Sp2Simulation::measurement_loss() {
  return analysis::measure_loss(campaign(), cfg_.table_min_coverage);
}

power2::RunResult Sp2Simulation::run_kernel(
    const power2::KernelDesc& kernel) const {
  power2::Power2Core core(cfg_.driver.core);
  return core.run(kernel);
}

}  // namespace p2sim::core
