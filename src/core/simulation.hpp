// Public facade: one object that owns a simulated campaign and serves every
// table and figure from it.
//
// Typical use (see examples/quickstart.cpp):
//
//   p2sim::core::Sp2Simulation sim;          // default: the paper's setup
//   auto t2 = sim.table2();                  // runs the campaign lazily
//   std::cout << p2sim::analysis::format_table2(t2);
//
// The campaign is deterministic in the configuration (seed included), so
// every accessor is consistent with every other.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/analysis/daily.hpp"
#include "src/analysis/figures.hpp"
#include "src/analysis/loss.hpp"
#include "src/analysis/tables.hpp"
#include "src/power2/core.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::core {

/// Top-level configuration; wraps the campaign driver configuration and the
/// analysis parameters.
struct Sp2Config {
  workload::DriverConfig driver{};
  /// Day filter threshold for Tables 2-4 (the paper's 2.0 Gflops).
  double table_min_gflops = 2.0;
  /// Days measured below this coverage are dropped from the table sample
  /// (moot on fault-free campaigns, where every day is fully covered).
  double table_min_coverage = 0.9;

  /// The fault-injection knob (defaults to disabled).
  fault::FaultConfig& faults() { return driver.faults; }
  const fault::FaultConfig& faults() const { return driver.faults; }

  /// Worker threads for the driver's parallel phases (results are
  /// bit-identical for every value; see workload::DriverConfig::threads).
  int& threads() { return driver.threads; }
  int threads() const { return driver.threads; }

  /// Persistent signature-store file (empty = off); store hits are
  /// bit-identical to fresh measurement.  See
  /// workload::DriverConfig::signature_store_path.
  std::string& signature_store() { return driver.signature_store_path; }
  const std::string& signature_store() const {
    return driver.signature_store_path;
  }

  /// Durable checkpoint/restart (off by default; a resumed campaign is
  /// bit-identical to an uninterrupted one).  See
  /// workload::DriverConfig::checkpoint.
  workload::CheckpointConfig& checkpoint() { return driver.checkpoint; }
  const workload::CheckpointConfig& checkpoint() const {
    return driver.checkpoint;
  }

  /// Columnar campaign archive destination (empty = off); the driver
  /// batch-appends every interval and job record and commits the file
  /// durably at campaign end.  Bytes are identical for every thread
  /// count.  See workload::DriverConfig::archive_path.
  std::string& archive() { return driver.archive_path; }
  const std::string& archive() const { return driver.archive_path; }

  /// A scaled-down campaign for tests and quick demos: fewer days, fewer
  /// nodes, same physics.
  static Sp2Config small(std::int64_t days = 30, int nodes = 32);
};

class Sp2Simulation {
 public:
  explicit Sp2Simulation(Sp2Config cfg = {});

  /// The full campaign result (runs it on first call).
  const workload::CampaignResult& campaign();
  /// Per-day aggregates.
  const std::vector<analysis::DayStats>& days();

  analysis::Table2 table2();
  analysis::Table3 table3();
  analysis::Table4 table4();
  analysis::Fig1Series fig1(std::size_t ma_window = 14);
  analysis::Fig2Series fig2();
  analysis::Fig3Series fig3();
  analysis::Fig4Series fig4(int node_count = 16);
  analysis::Fig5Series fig5();
  /// How much of the campaign was measured and where the rest went
  /// (trivially all-zero-loss on a fault-free campaign).
  analysis::MeasurementLoss measurement_loss();

  /// Runs one kernel on a fresh core with the campaign's core config —
  /// the paper's single-processor calibration measurements.
  power2::RunResult run_kernel(const power2::KernelDesc& kernel) const;

  const Sp2Config& config() const { return cfg_; }

 private:
  Sp2Config cfg_;
  std::optional<workload::CampaignResult> result_;
  std::optional<std::vector<analysis::DayStats>> days_;
};

}  // namespace p2sim::core
