#include "src/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2sim::telemetry {
namespace {

// Not atomic: the simulator is single-threaded by design and the counter
// only feeds the overhead-guard test.
std::uint64_t g_metrics_created = 0;

/// Round-trip double formatting: integers print bare, everything else with
/// enough digits to reconstruct the bits (so exports are reproducible).
std::string format_number(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

/// JSON has no Inf literal; histogram bounds export as a string there.
std::string json_number(double v) {
  if (std::isinf(v)) return v > 0 ? "\"+Inf\"" : "\"-Inf\"";
  return format_number(v);
}

}  // namespace

std::uint64_t metrics_created() { return g_metrics_created; }

bool valid_metric_name(std::string_view name) {
  if (name.size() < 7 || name.substr(0, 6) != "p2sim_") return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

Counter::Counter() { ++g_metrics_created; }

Gauge::Gauge() { ++g_metrics_created; }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  ++g_metrics_created;
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram needs >= 1 bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

std::vector<double> exponential_buckets(double start, double factor, int n) {
  if (start <= 0.0 || factor <= 1.0 || n < 1) {
    throw std::invalid_argument("exponential_buckets: bad parameters");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Registry::Entry& Registry::entry_for(std::string_view name,
                                     std::string_view help, Kind kind,
                                     bool wall_clock) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("metric name '" + std::string(name) +
                                "' does not match ^p2sim_[a-z0-9_]+$");
  }
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = std::string(help);
  e.wall_clock = wall_clock;
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           bool wall_clock) {
  Entry& e = entry_for(name, help, Kind::kCounter, wall_clock);
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       bool wall_clock) {
  Entry& e = entry_for(name, help, Kind::kGauge, wall_clock);
  if (!e.g) e.g = std::make_unique<Gauge>();
  return *e.g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> upper_bounds,
                               bool wall_clock) {
  Entry& e = entry_for(name, help, Kind::kHistogram, wall_clock);
  if (!e.h) e.h = std::make_unique<Histogram>(std::move(upper_bounds));
  return *e.h;
}

bool Registry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::string Registry::prometheus_text() const {
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    os << "# HELP " << name << ' ' << e.help << '\n';
    os << "# TYPE " << name << ' ';
    switch (e.kind) {
      case Kind::kCounter:
        os << "counter\n" << name << ' ' << e.c->value() << '\n';
        break;
      case Kind::kGauge:
        os << "gauge\n" << name << ' ' << format_number(e.g->value()) << '\n';
        break;
      case Kind::kHistogram: {
        os << "histogram\n";
        std::uint64_t cum = 0;
        const auto& bounds = e.h->upper_bounds();
        const auto& counts = e.h->bucket_counts();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cum += counts[i];
          os << name << "_bucket{le=\"" << format_number(bounds[i]) << "\"} "
             << cum << '\n';
        }
        cum += counts[bounds.size()];
        os << name << "_bucket{le=\"+Inf\"} " << cum << '\n';
        os << name << "_sum " << format_number(e.h->sum()) << '\n';
        os << name << "_count " << e.h->count() << '\n';
        break;
      }
    }
  }
  return os.str();
}

void Histogram::save_ckpt(util::CkptWriter& w) const {
  for (std::uint64_t c : counts_) w.put_u64(c);
  w.put_u64(count_);
  w.put_f64(sum_);
}

void Histogram::restore_ckpt(util::CkptReader& r) {
  for (std::uint64_t& c : counts_) c = r.read_u64("histogram.bucket");
  count_ = r.read_u64("histogram.count");
  sum_ = r.read_f64("histogram.sum");
}

void Registry::save_ckpt(util::CkptWriter& w) const {
  w.put_u64(entries_.size());
  for (const auto& [name, e] : entries_) {
    w.put_str(name);
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_str(e.help);
    w.put_bool(e.wall_clock);
    switch (e.kind) {
      case Kind::kCounter:
        w.put_u64(e.c != nullptr ? e.c->value() : 0);
        break;
      case Kind::kGauge:
        w.put_f64(e.g != nullptr ? e.g->value() : 0.0);
        break;
      case Kind::kHistogram: {
        const auto& bounds = e.h->upper_bounds();
        w.put_u64(bounds.size());
        for (double b : bounds) w.put_f64(b);
        e.h->save_ckpt(w);
        break;
      }
    }
  }
}

void Registry::restore_ckpt(util::CkptReader& r) {
  entries_.clear();
  std::uint64_t n = r.read_u64("registry.entries");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.read_str("registry.name");
    const std::uint8_t raw_kind = r.read_u8("registry.kind");
    if (raw_kind > static_cast<std::uint8_t>(Kind::kHistogram)) {
      throw util::CkptError("registry.kind: unknown metric kind");
    }
    const Kind kind = static_cast<Kind>(raw_kind);
    const std::string help = r.read_str("registry.help");
    const bool wall = r.read_bool("registry.wall_clock");
    switch (kind) {
      case Kind::kCounter:
        counter(name, help, wall).inc(r.read_u64("registry.counter_value"));
        break;
      case Kind::kGauge:
        gauge(name, help, wall).set(r.read_f64("registry.gauge_value"));
        break;
      case Kind::kHistogram: {
        std::uint64_t nb = r.read_u64("registry.histogram_bounds");
        std::vector<double> bounds(static_cast<std::size_t>(nb));
        for (double& b : bounds) b = r.read_f64("registry.histogram_bound");
        histogram(name, help, std::move(bounds), wall).restore_ckpt(r);
        break;
      }
    }
  }
}

std::string Registry::jsonl(bool include_wall_clock) const {
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    if (e.wall_clock && !include_wall_clock) continue;
    os << "{\"metric\":\"" << name << "\",";
    switch (e.kind) {
      case Kind::kCounter:
        os << "\"type\":\"counter\",\"value\":" << e.c->value();
        break;
      case Kind::kGauge:
        os << "\"type\":\"gauge\",\"value\":" << json_number(e.g->value());
        break;
      case Kind::kHistogram: {
        os << "\"type\":\"histogram\",\"buckets\":[";
        const auto& bounds = e.h->upper_bounds();
        const auto& counts = e.h->bucket_counts();
        for (std::size_t i = 0; i <= bounds.size(); ++i) {
          if (i > 0) os << ',';
          const std::string le =
              i < bounds.size() ? json_number(bounds[i]) : "\"+Inf\"";
          os << "{\"le\":" << le << ",\"count\":" << counts[i] << '}';
        }
        os << "],\"sum\":" << json_number(e.h->sum())
           << ",\"count\":" << e.h->count();
        break;
      }
    }
    if (e.wall_clock) os << ",\"wall_clock\":true";
    os << "}\n";
  }
  return os.str();
}

}  // namespace p2sim::telemetry
