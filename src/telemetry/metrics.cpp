#include "src/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2sim::telemetry {
namespace {

// Atomic since the monitoring plane constructs metrics from any thread;
// the counter still only feeds the overhead-guard tests.
std::atomic<std::uint64_t> g_metrics_created{0};

/// Round-trip double formatting: integers print bare, everything else with
/// enough digits to reconstruct the bits (so exports are reproducible).
std::string format_number(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

/// JSON has no Inf literal; histogram bounds export as a string there.
std::string json_number(double v) {
  if (std::isinf(v)) return v > 0 ? "\"+Inf\"" : "\"-Inf\"";
  return format_number(v);
}

/// Prometheus exposition escaping for HELP text: backslash and newline.
std::string escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Prometheus exposition escaping for label values: backslash, quote,
/// newline.
std::string escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::uint64_t metrics_created() {
  return g_metrics_created.load(std::memory_order_relaxed);
}

std::string json_double(double v) { return json_number(v); }

bool valid_metric_name(std::string_view name) {
  if (name.size() < 7 || name.substr(0, 6) != "p2sim_") return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

Counter::Counter() {
  g_metrics_created.fetch_add(1, std::memory_order_relaxed);
}

Gauge::Gauge() {
  g_metrics_created.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), hbkt_(bounds_.size() + 1) {
  g_metrics_created.fetch_add(1, std::memory_order_relaxed);
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram needs >= 1 bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram bounds must be strictly increasing");
  }
}

std::uint64_t Histogram::writer_lock() {
  // CAS the sequence from even to odd; a concurrent writer holds it odd,
  // so spin until the window opens.  Windows are a handful of relaxed
  // stores — no syscalls, no allocation — so the spin is short.  Returns
  // the even sequence the writer entered from.
  std::uint64_t s = hseq_.load(std::memory_order_relaxed);
  for (;;) {
    if ((s & 1U) == 0 &&
        hseq_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) {
      return s;
    }
    s = hseq_.load(std::memory_order_relaxed);
  }
}

void Histogram::writer_unlock(std::uint64_t entry_seq) {
  hseq_.store(entry_seq + 2, std::memory_order_release);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  const std::uint64_t entry = writer_lock();
  hbkt_[idx].fetch_add(1, std::memory_order_relaxed);
  hnum_.fetch_add(1, std::memory_order_relaxed);
  const double cur = hsum_.load(std::memory_order_relaxed);
  hsum_.store(cur + v, std::memory_order_relaxed);
  writer_unlock(entry);
}

void Histogram::read_coherent(std::vector<std::uint64_t>* counts,
                              std::uint64_t* count, double* sum) const {
  counts->assign(hbkt_.size(), 0);
  for (;;) {
    const std::uint64_t s1 = hseq_.load(std::memory_order_acquire);
    if ((s1 & 1U) != 0) continue;  // writer in the window; retry
    for (std::size_t i = 0; i < hbkt_.size(); ++i) {
      (*counts)[i] = hbkt_[i].load(std::memory_order_relaxed);
    }
    *count = hnum_.load(std::memory_order_relaxed);
    *sum = hsum_.load(std::memory_order_relaxed);
    // The validation read is an acq_rel RMW so the data loads above cannot
    // sink past it (release) nor float above s1 (acquire on entry).
    if (hseq_.fetch_add(0, std::memory_order_acq_rel) == s1) return;
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  std::uint64_t n = 0;
  double s = 0.0;
  read_coherent(&counts, &n, &s);
  return counts;
}

std::vector<double> exponential_buckets(double start, double factor, int n) {
  if (start <= 0.0 || factor <= 1.0 || n < 1) {
    throw std::invalid_argument("exponential_buckets: bad parameters");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Registry::Entry& Registry::entry_for(std::string_view name,
                                     std::string_view help, MetricKind kind,
                                     bool wall_clock,
                                     std::vector<double>* upper_bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("metric name '" + std::string(name) +
                                "' does not match ^p2sim_[a-z0-9_]+$");
  }
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return it->second;
  }
  // Materialize the metric object *before* publication so a lock-free
  // reader never sees a half-built entry.
  Entry e;
  e.kind = kind;
  e.help = std::string(help);
  e.wall_clock = wall_clock;
  switch (kind) {
    case MetricKind::kCounter:
      e.c = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.g = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.h = std::make_unique<Histogram>(std::move(*upper_bounds));
      break;
  }
  Entry& inserted =
      entries_.emplace(std::string(name), std::move(e)).first->second;
  republish();
  return inserted;
}

void Registry::republish() {
  auto next = std::make_unique<SnapList>();
  next->reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    next->push_back(View{&name, &e});
  }
  snap_head_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           bool wall_clock) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return *entry_for(name, help, MetricKind::kCounter, wall_clock, nullptr).c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       bool wall_clock) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return *entry_for(name, help, MetricKind::kGauge, wall_clock, nullptr).g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> upper_bounds,
                               bool wall_clock) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return *entry_for(name, help, MetricKind::kHistogram, wall_clock,
                    &upper_bounds)
              .h;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return entries_.size();
}

bool Registry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return entries_.find(name) != entries_.end();
}

MetricsSnapshot Registry::snapshot() const {
  const SnapList* list = snap_head_.load(std::memory_order_acquire);
  MetricsSnapshot out;
  if (list == nullptr) return out;
  out.reserve(list->size());
  for (const View& v : *list) {
    MetricSample s;
    s.name = *v.name;
    s.kind = v.entry->kind;
    s.help = v.entry->help;
    s.wall_clock = v.entry->wall_clock;
    switch (v.entry->kind) {
      case MetricKind::kCounter:
        s.counter_value = v.entry->c->value();
        break;
      case MetricKind::kGauge:
        s.gauge_value = v.entry->g->value();
        break;
      case MetricKind::kHistogram:
        s.bounds = v.entry->h->upper_bounds();
        v.entry->h->read_coherent(&s.bucket_counts, &s.observations,
                                  &s.sum);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::render_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const MetricSample& s : snap) {
    os << "# HELP " << s.name << ' ' << escape_help(s.help) << '\n';
    os << "# TYPE " << s.name << ' ';
    switch (s.kind) {
      case MetricKind::kCounter:
        os << "counter\n" << s.name << ' ' << s.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        os << "gauge\n"
           << s.name << ' ' << format_number(s.gauge_value) << '\n';
        break;
      case MetricKind::kHistogram: {
        os << "histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cum += s.bucket_counts[i];
          os << s.name << "_bucket{le=\""
             << escape_label(format_number(s.bounds[i])) << "\"} " << cum
             << '\n';
        }
        cum += s.bucket_counts[s.bounds.size()];
        os << s.name << "_bucket{le=\"+Inf\"} " << cum << '\n';
        os << s.name << "_sum " << format_number(s.sum) << '\n';
        os << s.name << "_count " << s.observations << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::prometheus_text() const {
  return render_prometheus(snapshot());
}

std::string Registry::render_jsonl(const MetricsSnapshot& snap,
                                   bool include_wall_clock) {
  std::ostringstream os;
  for (const MetricSample& s : snap) {
    if (s.wall_clock && !include_wall_clock) continue;
    os << "{\"metric\":\"" << s.name << "\",";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << "\"type\":\"counter\",\"value\":" << s.counter_value;
        break;
      case MetricKind::kGauge:
        os << "\"type\":\"gauge\",\"value\":" << json_number(s.gauge_value);
        break;
      case MetricKind::kHistogram: {
        os << "\"type\":\"histogram\",\"buckets\":[";
        for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
          if (i > 0) os << ',';
          const std::string le =
              i < s.bounds.size() ? json_number(s.bounds[i]) : "\"+Inf\"";
          os << "{\"le\":" << le << ",\"count\":" << s.bucket_counts[i]
             << '}';
        }
        os << "],\"sum\":" << json_number(s.sum)
           << ",\"count\":" << s.observations;
        break;
      }
    }
    if (s.wall_clock) os << ",\"wall_clock\":true";
    os << "}\n";
  }
  return os.str();
}

std::string Registry::jsonl(bool include_wall_clock) const {
  return render_jsonl(snapshot(), include_wall_clock);
}

void Histogram::save_ckpt(util::CkptWriter& w) const {
  std::vector<std::uint64_t> counts;
  std::uint64_t n = 0;
  double s = 0.0;
  read_coherent(&counts, &n, &s);
  for (std::uint64_t c : counts) w.put_u64(c);
  w.put_u64(n);
  w.put_f64(s);
}

void Histogram::restore_ckpt(util::CkptReader& r) {
  const std::uint64_t entry = writer_lock();
  for (std::size_t i = 0; i < hbkt_.size(); ++i) {
    hbkt_[i].store(r.read_u64("histogram.bucket"), std::memory_order_relaxed);
  }
  hnum_.store(r.read_u64("histogram.count"), std::memory_order_relaxed);
  hsum_.store(r.read_f64("histogram.sum"), std::memory_order_relaxed);
  writer_unlock(entry);
}

void Registry::save_ckpt(util::CkptWriter& w) const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  w.put_u64(entries_.size());
  for (const auto& [name, e] : entries_) {
    w.put_str(name);
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_str(e.help);
    w.put_bool(e.wall_clock);
    switch (e.kind) {
      case MetricKind::kCounter:
        w.put_u64(e.c != nullptr ? e.c->value() : 0);
        break;
      case MetricKind::kGauge:
        w.put_f64(e.g != nullptr ? e.g->value() : 0.0);
        break;
      case MetricKind::kHistogram: {
        const auto& bounds = e.h->upper_bounds();
        w.put_u64(bounds.size());
        for (double b : bounds) w.put_f64(b);
        e.h->save_ckpt(w);
        break;
      }
    }
  }
}

void Registry::restore_ckpt(util::CkptReader& r) {
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    entries_.clear();
    republish();
  }
  std::uint64_t n = r.read_u64("registry.entries");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.read_str("registry.name");
    const std::uint8_t raw_kind = r.read_u8("registry.kind");
    if (raw_kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      throw util::CkptError("registry.kind: unknown metric kind");
    }
    const MetricKind kind = static_cast<MetricKind>(raw_kind);
    const std::string help = r.read_str("registry.help");
    const bool wall = r.read_bool("registry.wall_clock");
    switch (kind) {
      case MetricKind::kCounter:
        counter(name, help, wall).inc(r.read_u64("registry.counter_value"));
        break;
      case MetricKind::kGauge:
        gauge(name, help, wall).set(r.read_f64("registry.gauge_value"));
        break;
      case MetricKind::kHistogram: {
        std::uint64_t nb = r.read_u64("registry.histogram_bounds");
        std::vector<double> bounds(static_cast<std::size_t>(nb));
        for (double& b : bounds) b = r.read_f64("registry.histogram_bound");
        histogram(name, help, std::move(bounds), wall).restore_ckpt(r);
        break;
      }
    }
  }
}

}  // namespace p2sim::telemetry
