#include "src/telemetry/session.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/telemetry/fold.hpp"

namespace p2sim::telemetry {

namespace detail {
Session* g_current = nullptr;
}  // namespace detail

Session::Session(const SessionConfig& cfg) : tracer(cfg.max_trace_events) {}

ScopedSession::ScopedSession(Session& session) : prev_(detail::g_current) {
  detail::g_current = &session;
}

ScopedSession::~ScopedSession() { detail::g_current = prev_; }

Session::FoldGuard::FoldGuard(Session* session) : session_(session) {
  if (session_ != nullptr) {
    session_->fold_seq_.fetch_add(1, std::memory_order_acq_rel);
  }
}

Session::FoldGuard::~FoldGuard() {
  if (session_ != nullptr) {
    session_->fold_seq_.fetch_add(1, std::memory_order_release);
  }
}

void Session::publish_live_shards(std::vector<const MetricShard*> shards) {
  std::lock_guard<std::mutex> lock(live_mu_);
  live_shards_ = std::move(shards);
}

void Session::retract_live_shards() {
  std::lock_guard<std::mutex> lock(live_mu_);
  live_shards_.clear();
}

MetricShard Session::live_shard_residue() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  return tree_fold_shards(
      live_shards_.size(),
      [this](std::size_t i) -> const MetricShard& { return *live_shards_[i]; });
}

ScopedLiveShards::ScopedLiveShards(Session* session,
                                   std::vector<const MetricShard*> shards)
    : session_(session) {
  if (session_ != nullptr) {
    session_->publish_live_shards(std::move(shards));
  }
}

ScopedLiveShards::~ScopedLiveShards() {
  if (session_ != nullptr) session_->retract_live_shards();
}

MetricsSnapshot consistent_snapshot(const Session& session) {
  for (;;) {
    const std::uint64_t epoch = session.fold_epoch();
    if ((epoch & 1U) != 0) {
      std::this_thread::yield();  // fold in flight; folds are short
      continue;
    }
    MetricsSnapshot snap = session.registry.snapshot();
    const MetricShard residue = session.live_shard_residue();
    if (session.fold_epoch() != epoch) continue;
    if (residue.empty()) return snap;
    for (const MetricShard::Field& f : MetricShard::fields()) {
      const std::uint64_t add = (residue.*f.value)();
      if (add == 0) continue;
      const auto it = std::find_if(
          snap.begin(), snap.end(),
          [&](const MetricSample& s) { return s.name == f.name; });
      if (it != snap.end()) {
        it->counter_value += add;
        continue;
      }
      // First scrape before the first fold: synthesize the sample in
      // sorted position so the exposition stays name-ordered.
      MetricSample s;
      s.name = f.name;
      s.kind = MetricKind::kCounter;
      s.help = f.help;
      s.counter_value = add;
      const auto pos = std::lower_bound(
          snap.begin(), snap.end(), s.name,
          [](const MetricSample& a, const std::string& n) {
            return a.name < n;
          });
      snap.insert(pos, std::move(s));
    }
    return snap;
  }
}

}  // namespace p2sim::telemetry
