#include "src/telemetry/session.hpp"

namespace p2sim::telemetry {

namespace detail {
Session* g_current = nullptr;
}  // namespace detail

Session::Session(const SessionConfig& cfg) : tracer(cfg.max_trace_events) {}

ScopedSession::ScopedSession(Session& session) : prev_(detail::g_current) {
  detail::g_current = &session;
}

ScopedSession::~ScopedSession() { detail::g_current = prev_; }

}  // namespace p2sim::telemetry
