// Pipeline-health observation: what the campaign driver tells a live
// dashboard at every 15-minute tick.
//
// The HealthSample is plain data (no rs2hpm/pbs types) so the telemetry
// layer stays below every instrumented module; the driver fills it from
// the daemon record, the scheduler and the fault injector.  Observers are
// orthogonal to the metrics session: installing one never perturbs the
// campaign (pure read-side), and a null observer costs one branch.
#pragma once

#include <cstdint>

namespace p2sim::telemetry {

/// One interval's health facts.  Cumulative fields count from campaign
/// start so a sink can difference or ratio them without history.
struct HealthSample {
  std::int64_t interval = 0;
  std::int64_t day = 0;
  /// Simulated seconds at the *end* of the interval.
  double sim_seconds = 0.0;

  /// False when the daemon missed this entire 15-minute sample — the
  /// node_* fields below are then zero.
  bool interval_recorded = false;
  int nodes_sampled = 0;
  int nodes_expected = 0;
  int nodes_reprimed = 0;

  int busy_nodes = 0;
  int offline_nodes = 0;
  std::int64_t queue_depth = 0;

  /// Live system Mflops over this interval (summed over sampled nodes).
  double mflops = 0.0;

  // Cumulative campaign counts.
  std::int64_t jobs_dispatched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_requeued = 0;
  /// FaultLog::total_faults() so far (0 on fault-free campaigns).
  std::int64_t faults_injected = 0;

  /// Fraction of expected node-samples delivered this interval.
  double coverage() const {
    return nodes_expected > 0
               ? static_cast<double>(nodes_sampled) / nodes_expected
               : 0.0;
  }
};

/// One finished job's facts, emitted at epilogue time (plain data, like
/// HealthSample, so the monitoring service can serve /api/jobs without
/// reaching into pbs/rs2hpm types).
struct JobSample {
  std::int64_t job_id = 0;
  std::int32_t user_id = 0;
  int nodes = 0;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Whole-job Mflops from the HPM report (0 when measurement was lost).
  double job_mflops = 0.0;
  /// True when the measurement window survived (prologue and epilogue).
  bool complete = false;
  /// True when the epilogue was lost and the report abandoned.
  bool abandoned = false;
};

/// Interface the driver calls once per interval (after the daemon sample)
/// and once per job at epilogue time.  on_job defaults to a no-op so
/// interval-only observers keep working unchanged.
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  virtual void on_interval(const HealthSample& sample) = 0;
  virtual void on_job(const JobSample& /*sample*/) {}
};

}  // namespace p2sim::telemetry
