// Metrics registry: the measurement pipeline's own counters.
//
// Bergeron could only discover after the fact that 240 of 270 days had been
// lost to the collection stack; a self-observing pipeline counts its own
// work as it runs.  This registry holds three metric kinds — monotone
// counters, gauges and fixed-bucket histograms — keyed by Prometheus-style
// names (`^p2sim_[a-z0-9_]+$`, enforced at registration and by
// tools/lint_events.py), and exports them as Prometheus text format and as
// JSONL.
//
// Concurrency model (the always-on monitoring plane): the writer hot path
// and N scraping readers never share a lock.
//   - Every metric value lives in std::atomic storage; writers use relaxed
//     increments (a counter bump is one uncontended fetch_add).
//   - A histogram keeps its buckets/count/sum coherent for readers with a
//     per-histogram seqlock: rare concurrent writers serialize on an odd
//     sequence, readers retry on a torn window.  Readers never block
//     writers and vice versa.
//   - The registry itself uses the two-level publication pattern from the
//     SignatureCache: registration (rare, mutex-guarded) republishes an
//     immutable snapshot list; scrapes walk the published list with one
//     acquire load and never touch the map or the mutex.  Retired lists
//     stay alive until the Registry dies, so a reader mid-walk is always
//     safe.  (Exception: restore_ckpt rebuilds the map in place and is a
//     startup-path operation — it must not race a scrape.)
//
// Determinism contract: metrics derived from simulated quantities are
// bit-stable across identical campaigns.  Metrics fed from wall-clock
// measurements must be registered with `wall_clock = true`; the JSONL
// export excludes them by default so a telemetry dump of simulated-time
// metrics is byte-identical between identical runs.
//
// Registration is idempotent: calling `counter(name, ...)` again returns
// the existing instance (the source-level lint additionally requires each
// metric name literal to appear at exactly one registration site, so a
// name cannot drift between meanings).  Registering the same name as a
// different kind throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::telemetry {

/// Process-wide count of metric objects ever constructed.  The overhead
/// guard tests assert this stays flat across a telemetry-disabled campaign
/// *and* across the scrape path: serving /metrics must allocate no metric
/// objects.
std::uint64_t metrics_created();

/// True when `name` matches `^p2sim_[a-z0-9_]+$`.
bool valid_metric_name(std::string_view name);

/// Monotonically increasing event count.  No decrement exists by design.
class Counter {
 public:
  Counter();
  void inc(std::uint64_t n = 1) {
    cval_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cval_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> cval_{0};
};

/// A value that goes up and down (queue depth, coverage fraction).
class Gauge {
 public:
  Gauge();
  void set(double v) { gval_.store(v, std::memory_order_relaxed); }
  void add(double d) { gval_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return gval_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> gval_{0.0};
};

/// Fixed-bucket histogram with Prometheus semantics: `upper_bounds` are
/// inclusive bucket upper bounds, and an implicit +Inf bucket catches the
/// rest.  Bounds are fixed at registration — no re-bucketing mid-campaign.
///
/// observe() serializes concurrent writers through the per-histogram
/// seqlock; read_coherent() gives readers a coherent (buckets, count, sum)
/// triple without ever blocking a writer for more than one retry window.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  /// Coherent with respect to concurrent observe() calls.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return hnum_.load(std::memory_order_relaxed); }
  double sum() const { return hsum_.load(std::memory_order_relaxed); }

  /// Coherent triple: sum(counts) == count and sum matches, even while
  /// writers are observing concurrently.
  void read_coherent(std::vector<std::uint64_t>* counts, std::uint64_t* count,
                     double* sum) const;

  /// Checkpoint support: observation counts and the running sum round-trip
  /// (the sum is an order-dependent double accumulation, so it must be
  /// restored, not replayed).
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  std::uint64_t writer_lock();
  void writer_unlock(std::uint64_t entry_seq);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> hbkt_;
  std::atomic<std::uint64_t> hnum_{0};
  std::atomic<double> hsum_{0.0};
  // Seqlock word: odd while a writer mutates, bumped by 2 per mutation.
  // Mutable: a reader's validation step is an RMW (see sample()).
  mutable std::atomic<std::uint64_t> hseq_{0};
};

/// `n` exponential bucket bounds: start, start*factor, start*factor^2, ...
std::vector<double> exponential_buckets(double start, double factor, int n);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// A plain-value copy of one metric, decoupled from live storage; what a
/// scrape works with after the one lock-free walk of the registry.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  bool wall_clock = false;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t observations = 0;
  double sum = 0.0;
};

using MetricsSnapshot = std::vector<MetricSample>;

/// JSON rendering of a double (Inf has no JSON literal; it renders as a
/// string).  Shared by the JSONL export and the monitoring endpoints.
std::string json_double(double v);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) a metric.  Throws std::invalid_argument on a
  /// malformed name or a kind clash with an existing registration.
  /// Thread-safe; the returned reference stays valid for the Registry's
  /// lifetime.
  Counter& counter(std::string_view name, std::string_view help,
                   bool wall_clock = false);
  Gauge& gauge(std::string_view name, std::string_view help,
               bool wall_clock = false);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> upper_bounds,
                       bool wall_clock = false);

  std::size_t size() const;
  bool contains(std::string_view name) const;

  /// Plain-value copy of every registered metric, in name order.  Entirely
  /// lock-free: one acquire load of the published registration list, then
  /// relaxed/seqlocked value reads.  Never allocates metric objects.
  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition format, metrics in name order.
  std::string prometheus_text() const;
  static std::string render_prometheus(const MetricsSnapshot& snap);

  /// One JSON object per metric per line, in name order.  Wall-clock
  /// metrics are excluded unless asked for, so the default export is
  /// bit-stable across identical simulated campaigns.
  std::string jsonl(bool include_wall_clock = false) const;
  static std::string render_jsonl(const MetricsSnapshot& snap,
                                  bool include_wall_clock);

  /// Checkpoint support: every registered metric (name, kind, help,
  /// wall-clock flag and current value) round-trips, so a resumed
  /// campaign's exports are byte-identical to the uninterrupted run's.
  /// restore_ckpt is the one registry operation that must not race a
  /// scrape (startup path only).
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    bool wall_clock = false;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  /// One published registration: name and entry live in the map, whose
  /// nodes are pointer-stable for the Registry's lifetime.
  struct View {
    const std::string* name = nullptr;
    const Entry* entry = nullptr;
  };
  using SnapList = std::vector<View>;

  /// Finds or creates a fully materialized entry; republishes on create.
  /// Caller must hold reg_mu_.
  Entry& entry_for(std::string_view name, std::string_view help,
                   MetricKind kind, bool wall_clock,
                   std::vector<double>* upper_bounds);
  void republish();

  mutable std::mutex reg_mu_;
  // std::map keeps exports in deterministic (sorted) name order, and its
  // nodes never move, so published Views stay valid across registrations.
  std::map<std::string, Entry, std::less<>> entries_
      P2SIM_GUARDED_BY(reg_mu_);
  // Every list ever published, newest last; retired lists are kept alive
  // (bounded by the registration count) so a concurrent reader can finish
  // walking one.
  std::vector<std::unique_ptr<const SnapList>> retired_
      P2SIM_GUARDED_BY(reg_mu_);
  std::atomic<const SnapList*> snap_head_{nullptr};
};

}  // namespace p2sim::telemetry
