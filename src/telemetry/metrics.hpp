// Metrics registry: the measurement pipeline's own counters.
//
// Bergeron could only discover after the fact that 240 of 270 days had been
// lost to the collection stack; a self-observing pipeline counts its own
// work as it runs.  This registry holds three metric kinds — monotone
// counters, gauges and fixed-bucket histograms — keyed by Prometheus-style
// names (`^p2sim_[a-z0-9_]+$`, enforced at registration and by
// tools/lint_events.py), and exports them as Prometheus text format and as
// JSONL.
//
// Determinism contract: metrics derived from simulated quantities are
// bit-stable across identical campaigns.  Metrics fed from wall-clock
// measurements must be registered with `wall_clock = true`; the JSONL
// export excludes them by default so a telemetry dump of simulated-time
// metrics is byte-identical between identical runs.
//
// Registration is idempotent: calling `counter(name, ...)` again returns
// the existing instance (the source-level lint additionally requires each
// metric name literal to appear at exactly one registration site, so a
// name cannot drift between meanings).  Registering the same name as a
// different kind throws.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/ckpt.hpp"

namespace p2sim::telemetry {

/// Process-wide count of metric objects ever constructed.  The overhead
/// guard test asserts this stays flat across a telemetry-disabled campaign:
/// disabled means *no registry allocations*, not merely unread ones.
std::uint64_t metrics_created();

/// True when `name` matches `^p2sim_[a-z0-9_]+$`.
bool valid_metric_name(std::string_view name);

/// Monotonically increasing event count.  No decrement exists by design.
class Counter {
 public:
  Counter();
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that goes up and down (queue depth, coverage fraction).
class Gauge {
 public:
  Gauge();
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus semantics: `upper_bounds` are
/// inclusive bucket upper bounds, and an implicit +Inf bucket catches the
/// rest.  Bounds are fixed at registration — no re-bucketing mid-campaign.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Checkpoint support: observation counts and the running sum round-trip
  /// (the sum is an order-dependent double accumulation, so it must be
  /// restored, not replayed).
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// `n` exponential bucket bounds: start, start*factor, start*factor^2, ...
std::vector<double> exponential_buckets(double start, double factor, int n);

class Registry {
 public:
  /// Registers (or finds) a metric.  Throws std::invalid_argument on a
  /// malformed name or a kind clash with an existing registration.
  Counter& counter(std::string_view name, std::string_view help,
                   bool wall_clock = false);
  Gauge& gauge(std::string_view name, std::string_view help,
               bool wall_clock = false);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> upper_bounds,
                       bool wall_clock = false);

  std::size_t size() const { return entries_.size(); }
  bool contains(std::string_view name) const;

  /// Prometheus text exposition format, metrics in name order.
  std::string prometheus_text() const;

  /// One JSON object per metric per line, in name order.  Wall-clock
  /// metrics are excluded unless asked for, so the default export is
  /// bit-stable across identical simulated campaigns.
  std::string jsonl(bool include_wall_clock = false) const;

  /// Checkpoint support: every registered metric (name, kind, help,
  /// wall-clock flag and current value) round-trips, so a resumed
  /// campaign's exports are byte-identical to the uninterrupted run's.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind = Kind::kCounter;
    std::string help;
    bool wall_clock = false;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& entry_for(std::string_view name, std::string_view help, Kind kind,
                   bool wall_clock);

  // std::map keeps exports in deterministic (sorted) name order.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace p2sim::telemetry
