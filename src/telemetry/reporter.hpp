// Campaign progress / health reporter: the live view Bergeron never had.
//
// A HealthReporter is a CampaignObserver that aggregates every interval's
// HealthSample, optionally streams a one-line health record every `stride`
// intervals (day, coverage, live Mflops, faults so far), and renders an
// ASCII dashboard of the whole campaign on demand.  Its cumulative
// snapshot uses exactly the same node-sample arithmetic as the post-hoc
// measurement-loss report, so the two must agree to the last sample — the
// dashboard smoke test pins that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/telemetry/health.hpp"

namespace p2sim::telemetry {

struct ReporterConfig {
  /// Emit one health line per this many intervals (96 = daily); <= 0
  /// disables streaming.  Aggregation happens every interval regardless.
  std::int64_t stride = 96;
  /// Stream for health lines; nullptr collects silently.
  std::ostream* out = nullptr;
};

/// Running totals over the campaign so far.  The node-sample fields are
/// summed over *recorded* intervals only, mirroring analysis::loss.
struct HealthSnapshot {
  std::int64_t intervals_seen = 0;
  std::int64_t intervals_recorded = 0;
  std::int64_t node_samples_expected = 0;
  std::int64_t node_samples_clean = 0;
  std::int64_t node_samples_reprimed = 0;
  std::int64_t jobs_dispatched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_requeued = 0;
  std::int64_t faults_injected = 0;
  double mflops_sum = 0.0;

  /// Clean node-samples over expected, as analysis::loss computes it.
  double coverage() const {
    return node_samples_expected > 0
               ? static_cast<double>(node_samples_clean) /
                     static_cast<double>(node_samples_expected)
               : 1.0;
  }
  double mean_mflops() const {
    return intervals_recorded > 0
               ? mflops_sum / static_cast<double>(intervals_recorded)
               : 0.0;
  }
};

class HealthReporter : public CampaignObserver {
 public:
  explicit HealthReporter(const ReporterConfig& cfg = {});

  void on_interval(const HealthSample& sample) override;

  const HealthSnapshot& snapshot() const { return snap_; }

  /// Mean system Gflops per day (0 for days with no recorded interval).
  std::vector<double> daily_gflops() const;
  /// Node-sample coverage per day (1.0 for untouched days).
  std::vector<double> daily_coverage() const;

  /// One streaming health line for a sample (also what `out` receives).
  static std::string format_line(const HealthSample& sample);

  /// Full ASCII dashboard: cumulative health block plus daily Gflops and
  /// coverage charts (util::ascii_chart).
  std::string render_dashboard() const;

 private:
  struct DayAccum {
    std::int64_t intervals_seen = 0;
    std::int64_t intervals_recorded = 0;
    std::int64_t node_samples_expected = 0;
    std::int64_t node_samples_clean = 0;
    double mflops_sum = 0.0;
  };

  ReporterConfig cfg_;
  HealthSnapshot snap_;
  std::vector<DayAccum> days_;
};

}  // namespace p2sim::telemetry
