#include "src/telemetry/reporter.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/ascii_chart.hpp"
#include "src/util/sim_time.hpp"

namespace p2sim::telemetry {

HealthReporter::HealthReporter(const ReporterConfig& cfg) : cfg_(cfg) {}

void HealthReporter::on_interval(const HealthSample& sample) {
  ++snap_.intervals_seen;
  if (sample.interval_recorded) {
    ++snap_.intervals_recorded;
    snap_.node_samples_expected += sample.nodes_expected;
    snap_.node_samples_clean += sample.nodes_sampled;
    snap_.node_samples_reprimed += sample.nodes_reprimed;
    snap_.mflops_sum += sample.mflops;
  }
  snap_.jobs_dispatched = sample.jobs_dispatched;
  snap_.jobs_completed = sample.jobs_completed;
  snap_.jobs_requeued = sample.jobs_requeued;
  snap_.faults_injected = sample.faults_injected;

  const auto day = static_cast<std::size_t>(sample.day);
  if (days_.size() <= day) days_.resize(day + 1);
  DayAccum& d = days_[day];
  ++d.intervals_seen;
  if (sample.interval_recorded) {
    ++d.intervals_recorded;
    d.node_samples_expected += sample.nodes_expected;
    d.node_samples_clean += sample.nodes_sampled;
    d.mflops_sum += sample.mflops;
  }

  if (cfg_.out != nullptr && cfg_.stride > 0 &&
      (sample.interval + 1) % cfg_.stride == 0) {
    *cfg_.out << format_line(sample) << '\n';
  }
}

std::vector<double> HealthReporter::daily_gflops() const {
  std::vector<double> out;
  out.reserve(days_.size());
  for (const DayAccum& d : days_) {
    out.push_back(d.intervals_recorded > 0
                      ? d.mflops_sum /
                            static_cast<double>(d.intervals_recorded) / 1e3
                      : 0.0);
  }
  return out;
}

std::vector<double> HealthReporter::daily_coverage() const {
  std::vector<double> out;
  out.reserve(days_.size());
  for (const DayAccum& d : days_) {
    // A day with missed whole intervals is under-covered even when every
    // *recorded* interval was clean: scale by the recorded fraction.
    const double node_cov =
        d.node_samples_expected > 0
            ? static_cast<double>(d.node_samples_clean) /
                  static_cast<double>(d.node_samples_expected)
            : 1.0;
    const double interval_cov =
        d.intervals_seen > 0
            ? static_cast<double>(d.intervals_recorded) /
                  static_cast<double>(d.intervals_seen)
            : 1.0;
    out.push_back(node_cov * interval_cov);
  }
  return out;
}

std::string HealthReporter::format_line(const HealthSample& sample) {
  const std::int64_t iod = sample.interval % util::kIntervalsPerDay;
  const std::int64_t minutes = iod * util::kIntervalSeconds / 60;
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "[day %3lld %02lld:%02lld] cov %5.1f%%  Mflops %9.1f  busy %3d  "
      "queue %3lld  faults %5lld",
      static_cast<long long>(sample.day),
      static_cast<long long>(minutes / 60),
      static_cast<long long>(minutes % 60),
      100.0 * (sample.interval_recorded ? sample.coverage() : 0.0),
      sample.mflops, sample.busy_nodes,
      static_cast<long long>(sample.queue_depth),
      static_cast<long long>(sample.faults_injected));
  return buf;
}

std::string HealthReporter::render_dashboard() const {
  std::ostringstream os;
  char buf[160];
  os << "Campaign pipeline health\n";
  os << "========================\n";
  std::snprintf(buf, sizeof buf,
                "  intervals recorded    %lld/%lld (%.1f%%)\n",
                static_cast<long long>(snap_.intervals_recorded),
                static_cast<long long>(snap_.intervals_seen),
                snap_.intervals_seen > 0
                    ? 100.0 * static_cast<double>(snap_.intervals_recorded) /
                          static_cast<double>(snap_.intervals_seen)
                    : 100.0);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  node-sample coverage  %.2f%% (clean %lld / expected %lld, "
                "re-primed %lld)\n",
                100.0 * snap_.coverage(),
                static_cast<long long>(snap_.node_samples_clean),
                static_cast<long long>(snap_.node_samples_expected),
                static_cast<long long>(snap_.node_samples_reprimed));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  jobs disp/done/requeued  %lld/%lld/%lld\n",
                static_cast<long long>(snap_.jobs_dispatched),
                static_cast<long long>(snap_.jobs_completed),
                static_cast<long long>(snap_.jobs_requeued));
  os << buf;
  std::snprintf(buf, sizeof buf, "  faults injected       %lld\n",
                static_cast<long long>(snap_.faults_injected));
  os << buf;
  std::snprintf(buf, sizeof buf, "  mean live Mflops      %.1f\n",
                snap_.mean_mflops());
  os << buf;

  const std::vector<double> gflops = daily_gflops();
  if (!gflops.empty()) {
    util::Series s;
    s.name = "Gflops";
    s.glyph = '*';
    for (std::size_t d = 0; d < gflops.size(); ++d) {
      s.xs.push_back(static_cast<double>(d));
      s.ys.push_back(gflops[d]);
    }
    util::ChartOptions opts;
    opts.title = "daily system Gflops (live)";
    opts.x_label = "day";
    opts.y_label = "Gflops";
    opts.height = 12;
    os << util::render_chart({s}, opts);

    util::Series c;
    c.name = "coverage";
    c.glyph = '#';
    const std::vector<double> cov = daily_coverage();
    for (std::size_t d = 0; d < cov.size(); ++d) {
      c.xs.push_back(static_cast<double>(d));
      c.ys.push_back(100.0 * cov[d]);
    }
    util::ChartOptions copts;
    copts.title = "daily node-sample coverage (%)";
    copts.x_label = "day";
    copts.y_label = "%";
    copts.height = 8;
    os << util::render_chart({c}, copts);
  }
  return os.str();
}

}  // namespace p2sim::telemetry
