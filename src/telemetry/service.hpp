// MonitorService: the glue between a running campaign and the HTTP plane.
//
// One object plays both observer roles: as a CampaignObserver it receives
// the driver's per-interval HealthSamples and per-job JobSamples (driver
// thread); as a util::HttpObserver it accounts every served request into
// wall-clock p2sim_server_* metrics (server loop thread); and its handle()
// method is the HttpHandler that routes the endpoints:
//
//   GET /metrics        Prometheus exposition — consistent_snapshot(), so
//                       a scrape mid-interval never tears the shard fold
//   GET /healthz        liveness + cumulative HealthReporter totals (JSON)
//   GET /api/days       per-day Gflops and coverage tables (JSON)
//   GET /api/jobs       recent finished jobs, newest last (JSON;
//                       ?limit=N caps the returned window)
//   GET /trace          last completed campaign's Chrome trace JSON
//                       (503 until a campaign finishes)
//   GET /quitquitquit   asks the daemon to exit (sets quit_requested())
//
// Locking: campaign-side state (reporter, job ring, trace body) sits under
// svc_mu_, shared by the driver thread and the loop thread — never by the
// campaign's parallel workers, whose only interaction with a scrape is the
// lock-free metrics plane.  The server must be stopped before this object
// (or the Session it references) is destroyed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/telemetry/health.hpp"
#include "src/telemetry/reporter.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/http_server.hpp"

namespace p2sim::telemetry {

struct MonitorConfig {
  /// Finished-job ring capacity for /api/jobs.
  std::size_t max_job_samples = 4096;
};

class MonitorService final : public CampaignObserver,
                             public util::HttpObserver {
 public:
  static constexpr const char* kMetricsPath = "/metrics";
  static constexpr const char* kHealthzPath = "/healthz";
  static constexpr const char* kJobsPath = "/api/jobs";
  static constexpr const char* kDaysPath = "/api/days";
  static constexpr const char* kTracePath = "/trace";
  static constexpr const char* kQuitPath = "/quitquitquit";

  explicit MonitorService(Session& session, const MonitorConfig& cfg = {});

  // Campaign side (driver thread).
  void on_interval(const HealthSample& sample) override;
  void on_job(const JobSample& sample) override;
  /// Installs the trace body served by /trace (call after a campaign).
  void set_trace_json(std::string trace_json);
  void note_campaign_complete();

  // Server side (loop thread).
  util::HttpResponse handle(const util::HttpRequest& req);
  void on_connection_delta(int delta) override;
  void on_request(const std::string& method, const std::string& path,
                  int status, double handler_seconds) override;

  /// True once /quitquitquit has been requested.
  bool quit_requested() const;

  /// Cumulative reporter totals (a copy, safe from any thread).
  HealthSnapshot health() const;

  // Endpoint bodies, also used directly by tests.
  std::string metrics_text() const;
  std::string healthz_json() const;
  std::string days_json() const;
  std::string jobs_json(std::size_t limit) const;

 private:
  Session& session_;
  MonitorConfig cfg_;

  // Wall-clock server metrics, registered once at construction so the
  // serve path never allocates metric objects.
  Counter* requests_total_ = nullptr;
  Counter* request_errors_total_ = nullptr;
  Gauge* inflight_connections_ = nullptr;
  Histogram* request_seconds_ = nullptr;

  mutable std::mutex svc_mu_;
  HealthReporter reporter_ P2SIM_GUARDED_BY(svc_mu_);
  std::vector<JobSample> jobs_ P2SIM_GUARDED_BY(svc_mu_);
  std::size_t next_job_ P2SIM_GUARDED_BY(svc_mu_) = 0;
  std::uint64_t jobs_seen_ P2SIM_GUARDED_BY(svc_mu_) = 0;
  std::int64_t campaigns_done_ P2SIM_GUARDED_BY(svc_mu_) = 0;
  std::string trace_json_ P2SIM_GUARDED_BY(svc_mu_);
  bool quit_requested_ P2SIM_GUARDED_BY(svc_mu_) = false;
};

}  // namespace p2sim::telemetry
