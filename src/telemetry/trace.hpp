// Tracing spans: where the pipeline's time goes, on both clocks.
//
// Every span carries two timelines: *simulated* time (the campaign clock —
// bit-stable across identical runs) and *wall* time (how long the simulator
// itself took — inherently nondeterministic).  The Chrome trace_event
// export places spans on the simulated timeline (`ts`/`dur`), so a trace
// loads into chrome://tracing or Perfetto as a picture of the campaign;
// wall-clock figures ride along under clearly segregated `wall_*` args and
// can be omitted entirely for byte-identical exports.
//
// Spans are RAII (`Span`) and nest; category/name must be string literals
// (the tracer stores the pointers).  A span on a null tracer costs one
// branch and touches nothing — that is the disabled path.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::telemetry {

/// The simulator's one sanctioned wall-clock read: microseconds on
/// std::chrono::steady_clock.  Wall time is inherently nondeterministic,
/// so tools/detlint.py confines clock access to this module; callers tag
/// anything derived from it as wall-clock data (trace `wall_*` args, the
/// registry's wall_clock metric flag) so byte-identical exports can strip
/// it.
/// Thread-safe (a bare steady_clock read), so parallel measurement workers
/// may stamp wall durations with it; determinism is unaffected because
/// every consumer tags the result as wall-clock data.
P2SIM_PAR_SAFE std::int64_t wall_now_us();

struct TraceEvent {
  const char* category = "";
  const char* name = "";
  /// Simulated-time window (seconds on the campaign clock).
  double sim_begin_s = 0.0;
  double sim_end_s = 0.0;
  /// Wall-clock window (microseconds on std::chrono::steady_clock) —
  /// segregated from the simulated fields and never mixed into them.
  std::int64_t wall_begin_us = 0;
  std::int64_t wall_end_us = 0;
  /// Nesting depth at open (1 = top level).
  int depth = 0;

  struct Arg {
    const char* key = "";
    double value = 0.0;
  };
  std::vector<Arg> args;
};

class Tracer {
 public:
  /// `max_events` bounds memory on long campaigns; spans beyond the cap
  /// are counted in dropped() instead of silently vanishing.
  explicit Tracer(std::size_t max_events = 1u << 20);

  /// Opens a span; returns a handle (0 when dropped by the cap — still a
  /// valid argument to end()/arg(), which then no-op).
  std::size_t begin(const char* category, const char* name,
                    double sim_begin_s);
  void end(std::size_t handle, double sim_end_s);
  void arg(std::size_t handle, const char* key, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  int open_depth() const { return depth_; }

  /// Chrome trace_event JSON ("X" complete events on the simulated
  /// timeline, ts/dur in microseconds).  With include_wall false the
  /// wall-clock args are omitted and the export is bit-stable across
  /// identical campaigns.
  std::string chrome_trace_json(bool include_wall = true) const;

  /// Checkpoint support: the recorded event stream round-trips (wall-clock
  /// fields included, faithfully — they stay segregated in the export).
  /// Restored category/name/key strings are interned in an owned pool, so
  /// the string-literal lifetime contract still holds for future spans.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  const char* intern(const std::string& s);

  std::vector<TraceEvent> events_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  int depth_ = 0;
  /// Owned backing for strings revived from a checkpoint (deque: stable
  /// element addresses under growth).
  std::deque<std::string> interned_;
};

/// RAII span.  Default-constructed (or on a null tracer) it is inert.
/// Close with the simulated end time; a span destroyed while open closes
/// with zero simulated duration (wall duration is still recorded).
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, const char* category, const char* name,
       double sim_begin_s);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void arg(const char* key, double value);
  void close(double sim_end_s);
  bool open() const { return open_; }
  explicit operator bool() const { return tracer_ != nullptr; }

  /// Checkpoint support for long-lived spans (the driver's day span stays
  /// open across checkpoints): the handle and begin time round-trip, and
  /// adopt_ckpt revives the span against the restored tracer, whose event
  /// stream was rebuilt with identical handles.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_u64(handle_);
    w.put_f64(sim_begin_s_);
    w.put_bool(open_);
  }
  static Span adopt_ckpt(Tracer* tracer, util::CkptReader& r) {
    Span s;
    s.handle_ = static_cast<std::size_t>(r.read_u64("span.handle"));
    s.sim_begin_s_ = r.read_f64("span.sim_begin_s");
    const bool was_open = r.read_bool("span.open");
    s.tracer_ = tracer;
    s.open_ = was_open && tracer != nullptr;
    return s;
  }

 private:
  Tracer* tracer_ = nullptr;
  std::size_t handle_ = 0;
  double sim_begin_s_ = 0.0;
  bool open_ = false;
};

}  // namespace p2sim::telemetry
