// Telemetry session: the one switch every instrumentation hook checks.
//
// A Session owns a metrics Registry and a Tracer.  Nothing is global by
// default: telemetry is *off* until a session is installed (ScopedSession),
// and every hook in the simulator reads `telemetry::current()` first — a
// single pointer load returning nullptr on the disabled path, so a
// campaign run without telemetry performs no metric allocations and no
// tracing work at all.
//
// Compile-time kill switch: configuring with -DP2SIM_TELEMETRY=OFF defines
// P2SIM_TELEMETRY_COMPILED=0, which pins current() to nullptr so the
// compiler deletes every hook body outright.  The library itself (registry,
// tracer, reporter) still builds either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/shard.hpp"
#include "src/telemetry/trace.hpp"

#ifndef P2SIM_TELEMETRY_COMPILED
#define P2SIM_TELEMETRY_COMPILED 1
#endif

namespace p2sim::telemetry {

struct SessionConfig {
  /// Cap on recorded trace events (excess spans count as dropped).
  std::size_t max_trace_events = std::size_t{1} << 20;
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg = {});

  Registry registry;
  Tracer tracer;

  /// Kernel-engine timeline (seconds): Level A kernel runs are not on the
  /// campaign clock, so their spans advance this deterministic cursor —
  /// one session, one engine timeline.
  double engine_clock_s = 0.0;

  // --- the monitoring plane's view of a running campaign ----------------
  //
  // A scrape that lands between the parallel node-advance and the serial
  // shard fold must not double-count (shard residue + already-folded
  // counters) or drop counts (shards just reset, counters not yet
  // bumped).  The driver brackets its fold+reset in a FoldGuard, which
  // flips fold_seq_ odd for the duration; consistent_snapshot() retries
  // around odd or changed epochs, exactly like the histogram seqlock.
  //
  // Lane shards only exist while the driver runs, so the driver publishes
  // the shard pointer list on entry and retracts it on exit; readers copy
  // the residue under live_mu_, which publish/retract also take — workers
  // never do, so the scrape path cannot stall the parallel region.

  /// Epoch counter for the shard fold; odd while a fold is in progress.
  std::uint64_t fold_epoch() const {
    return fold_seq_.load(std::memory_order_acquire);
  }

  /// RAII bracket the driver holds while folding shard residue into the
  /// registry and resetting the shards.  Null-safe: FoldGuard(nullptr) is
  /// inert, so call sites need no telemetry-off branch.
  class FoldGuard {
   public:
    explicit FoldGuard(Session* session);
    ~FoldGuard();
    FoldGuard(const FoldGuard&) = delete;
    FoldGuard& operator=(const FoldGuard&) = delete;

   private:
    Session* session_;
  };

  /// Publishes / retracts the live lane shards (driver entry/exit).
  void publish_live_shards(std::vector<const MetricShard*> shards);
  void retract_live_shards();

  /// Sum of every live shard's unfolded tallies; zero when no campaign is
  /// publishing.  Blocks only against publish/retract, never workers.
  MetricShard live_shard_residue() const;

 private:
  std::atomic<std::uint64_t> fold_seq_{0};
  mutable std::mutex live_mu_;
  std::vector<const MetricShard*> live_shards_ P2SIM_GUARDED_BY(live_mu_);
};

/// RAII publication of a campaign's lane shards to the session's live
/// view; null-safe and exception-safe (retracts on unwind, so a scrape
/// can never observe a dangling shard pointer).
class ScopedLiveShards {
 public:
  ScopedLiveShards(Session* session, std::vector<const MetricShard*> shards);
  ~ScopedLiveShards();
  ScopedLiveShards(const ScopedLiveShards&) = delete;
  ScopedLiveShards& operator=(const ScopedLiveShards&) = delete;

 private:
  Session* session_;
};

/// A registry snapshot that is consistent with respect to the driver's
/// shard fold: published counters plus unfolded shard residue, taken in a
/// stable fold epoch.  The residue is merged through MetricShard::fields()
/// so the scrape and the export agree on names.  Lock-free against the
/// campaign's writers; retries (with a yield) while a fold is in flight.
MetricsSnapshot consistent_snapshot(const Session& session);

namespace detail {
extern Session* g_current;
}  // namespace detail

/// The installed session, or nullptr when telemetry is off (runtime or
/// compile time).  Hooks must treat nullptr as "do nothing".
inline Session* current() {
#if P2SIM_TELEMETRY_COMPILED
  return detail::g_current;
#else
  return nullptr;
#endif
}

/// Installs `session` as current for the enclosing scope; restores the
/// previous (usually null) session on destruction.
class ScopedSession {
 public:
  explicit ScopedSession(Session& session);
  ~ScopedSession();
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Session* prev_;
};

/// Opens a span on the current session's tracer; inert when telemetry is
/// off.  `category`/`name` must be string literals.
inline Span span(const char* category, const char* name,
                 double sim_begin_s) {
  Session* s = current();
  return Span(s != nullptr ? &s->tracer : nullptr, category, name,
              sim_begin_s);
}

}  // namespace p2sim::telemetry
