// Telemetry session: the one switch every instrumentation hook checks.
//
// A Session owns a metrics Registry and a Tracer.  Nothing is global by
// default: telemetry is *off* until a session is installed (ScopedSession),
// and every hook in the simulator reads `telemetry::current()` first — a
// single pointer load returning nullptr on the disabled path, so a
// campaign run without telemetry performs no metric allocations and no
// tracing work at all.
//
// Compile-time kill switch: configuring with -DP2SIM_TELEMETRY=OFF defines
// P2SIM_TELEMETRY_COMPILED=0, which pins current() to nullptr so the
// compiler deletes every hook body outright.  The library itself (registry,
// tracer, reporter) still builds either way.
#pragma once

#include <cstddef>

#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

#ifndef P2SIM_TELEMETRY_COMPILED
#define P2SIM_TELEMETRY_COMPILED 1
#endif

namespace p2sim::telemetry {

struct SessionConfig {
  /// Cap on recorded trace events (excess spans count as dropped).
  std::size_t max_trace_events = std::size_t{1} << 20;
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg = {});

  Registry registry;
  Tracer tracer;

  /// Kernel-engine timeline (seconds): Level A kernel runs are not on the
  /// campaign clock, so their spans advance this deterministic cursor —
  /// one session, one engine timeline.
  double engine_clock_s = 0.0;
};

namespace detail {
extern Session* g_current;
}  // namespace detail

/// The installed session, or nullptr when telemetry is off (runtime or
/// compile time).  Hooks must treat nullptr as "do nothing".
inline Session* current() {
#if P2SIM_TELEMETRY_COMPILED
  return detail::g_current;
#else
  return nullptr;
#endif
}

/// Installs `session` as current for the enclosing scope; restores the
/// previous (usually null) session on destruction.
class ScopedSession {
 public:
  explicit ScopedSession(Session& session);
  ~ScopedSession();
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Session* prev_;
};

/// Opens a span on the current session's tracer; inert when telemetry is
/// off.  `category`/`name` must be string literals.
inline Span span(const char* category, const char* name,
                 double sim_begin_s) {
  Session* s = current();
  return Span(s != nullptr ? &s->tracer : nullptr, category, name,
              sim_begin_s);
}

}  // namespace p2sim::telemetry
