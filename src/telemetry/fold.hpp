// Deterministic pairwise tree reduction — the one merge shape shared by the
// driver's interval fold and the monitoring plane's merge-on-read.
//
// Both consumers reduce per-lane values into campaign totals, and both must
// produce the same result for every thread count and every scrape timing.
// For integer tallies any order works; for floating-point accumulators
// (lane busy seconds) association order changes the rounding, so the shape
// of the reduction *is* part of the determinism contract.  tree_fold fixes
// that shape as a function of n alone: [lo, hi) always splits at
// lo + (hi - lo) / 2, giving an O(log n) critical path when the leaves are
// expensive and — more importantly — an association order that no caller
// (serial fold, parallel fold, scrape residue) can accidentally vary.
//
// PR 4 chose a serial ascending fold and PR 8 duplicated it in
// consistent_snapshot; both now route through this header so the fold path
// and the scrape path cannot drift apart.
#pragma once

#include <cstddef>
#include <functional>

#include "src/check/annotate.hpp"
#include "src/telemetry/shard.hpp"

namespace p2sim::telemetry {

namespace detail {

template <typename Leaf, typename Merge>
auto tree_fold_range(std::size_t lo, std::size_t hi, const Leaf& leaf,
                     const Merge& merge) -> decltype(leaf(std::size_t{0})) {
  if (hi - lo == 1) return leaf(lo);
  const std::size_t mid = lo + (hi - lo) / 2;
  return merge(tree_fold_range(lo, mid, leaf, merge),
               tree_fold_range(mid, hi, leaf, merge));
}

}  // namespace detail

/// Reduces leaf(0) .. leaf(n-1) with `merge` in the fixed pairwise tree
/// shape described above.  `leaf(i)` produces the i-th value; `merge(a, b)`
/// combines two subtree results (a is always the lower index range).
/// Returns a value-initialized result when n == 0.
template <typename Leaf, typename Merge>
auto tree_fold(std::size_t n, const Leaf& leaf, const Merge& merge)
    -> decltype(leaf(std::size_t{0})) {
  using Acc = decltype(leaf(std::size_t{0}));
  if (n == 0) return Acc{};
  return detail::tree_fold_range(0, n, leaf, merge);
}

/// Tree-merges n MetricShards into one accumulated shard.  `shard_at(i)`
/// returns (a reference to) the i-th shard; the source shards are not
/// modified.  Shard tallies are integer counters, so the tree shape is a
/// latency choice here — but routing every shard reduction through this one
/// helper is what keeps the fold and scrape paths identical by
/// construction.
template <typename ShardAt>
MetricShard tree_fold_shards(std::size_t n, const ShardAt& shard_at) {
  return tree_fold(
      n,
      [&shard_at](std::size_t i) {
        MetricShard s;
        s.merge_from(shard_at(i));
        return s;
      },
      [](MetricShard a, const MetricShard& b) {
        a.merge_from(b);
        return a;
      });
}

}  // namespace p2sim::telemetry
