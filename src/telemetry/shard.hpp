// Per-lane metric shards: how telemetry stays exact inside a parallel loop.
//
// The metrics Registry is deliberately single-threaded (plain counters, a
// sorted map, no atomics) because every instrumentation hook runs in the
// driver's serial phases.  The node-advance phase runs one lane per worker
// thread, so lanes must not touch the registry at all; instead each lane
// accumulates its interval tallies into its own MetricShard — plain
// trivially-copyable fields, no registry allocation, safe without a
// session — and the driver folds the shards in fixed node order during the
// serial merge phase, publishing the fold into the registry at the interval
// boundary.  Counts therefore stay exact (no sampling, no relaxed-atomic
// drift) and the simulated-time exports stay byte-identical for every
// thread count: the published values are sums of per-lane integers whose
// per-lane values never depend on scheduling.
#pragma once

#include <cstdint>

#include "src/check/annotate.hpp"

namespace p2sim::telemetry {

// A shard is lane-private by construction; every method is safe
// inside the parallel region (the serial merge also uses them).
P2SIM_PAR_SAFE_FILE;

/// One lane's tallies for the current interval.  Reset after each merge.
struct MetricShard {
  /// Node-intervals spent servicing a PBS job / idle / out of service.
  std::uint64_t busy_node_intervals = 0;
  std::uint64_t idle_node_intervals = 0;
  std::uint64_t down_node_intervals = 0;

  /// Folds `other` into this shard.  The driver calls this in ascending
  /// node order, so the fold itself is deterministic.
  void merge_from(const MetricShard& other) {
    busy_node_intervals += other.busy_node_intervals;
    idle_node_intervals += other.idle_node_intervals;
    down_node_intervals += other.down_node_intervals;
  }

  void reset() { *this = MetricShard{}; }

  bool empty() const {
    return busy_node_intervals == 0 && idle_node_intervals == 0 &&
           down_node_intervals == 0;
  }
};

}  // namespace p2sim::telemetry
