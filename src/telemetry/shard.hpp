// Per-lane metric shards: how telemetry stays exact inside a parallel loop
// and visible to the monitoring plane while the loop runs.
//
// The node-advance phase runs one lane per worker thread, so lanes must
// not touch the registry at all; instead each lane accumulates its
// interval tallies into its own MetricShard — no registry allocation, safe
// without a session — and the driver folds the shards in fixed node order
// during the serial merge phase, publishing the fold into the registry at
// the interval boundary.  Counts therefore stay exact (no sampling) and
// the simulated-time exports stay byte-identical for every thread count:
// the published values are sums of per-lane integers whose per-lane values
// never depend on scheduling.
//
// The fields are relaxed atomics so a live scrape can *also* read the
// shards mid-interval (merge-on-read: the monitoring service sums the
// published registry counters plus the unfolded shard residue) without a
// single lock on the worker's increment path.  Atomicity here is only for
// cross-thread visibility — the values a lane writes are deterministic,
// and the exports fold them in fixed serial order exactly as before.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "src/check/annotate.hpp"

namespace p2sim::telemetry {

// A shard is written only by its owning lane; every method is safe inside
// the parallel region (the serial merge and concurrent scrape readers use
// relaxed loads).
P2SIM_PAR_SAFE_FILE;

/// One lane's tallies for the current interval.  Reset after each merge.
struct MetricShard {
  /// Node-intervals spent servicing a PBS job / idle / out of service.
  std::atomic<std::uint64_t> busy_node_intervals{0};
  std::atomic<std::uint64_t> idle_node_intervals{0};
  std::atomic<std::uint64_t> down_node_intervals{0};

  MetricShard() = default;
  MetricShard(const MetricShard& other) { copy_from(other); }
  MetricShard& operator=(const MetricShard& other) {
    copy_from(other);
    return *this;
  }

  std::uint64_t busy() const {
    return busy_node_intervals.load(std::memory_order_relaxed);
  }
  std::uint64_t idle() const {
    return idle_node_intervals.load(std::memory_order_relaxed);
  }
  std::uint64_t down() const {
    return down_node_intervals.load(std::memory_order_relaxed);
  }

  void add_busy(std::uint64_t n = 1) {
    busy_node_intervals.fetch_add(n, std::memory_order_relaxed);
  }
  void add_idle(std::uint64_t n = 1) {
    idle_node_intervals.fetch_add(n, std::memory_order_relaxed);
  }
  void add_down(std::uint64_t n = 1) {
    down_node_intervals.fetch_add(n, std::memory_order_relaxed);
  }

  /// Folds `other` into this shard.  The driver calls this in ascending
  /// node order, so the fold itself is deterministic.
  void merge_from(const MetricShard& other) {
    add_busy(other.busy());
    add_idle(other.idle());
    add_down(other.down());
  }

  void reset() {
    busy_node_intervals.store(0, std::memory_order_relaxed);
    idle_node_intervals.store(0, std::memory_order_relaxed);
    down_node_intervals.store(0, std::memory_order_relaxed);
  }

  bool empty() const { return busy() == 0 && idle() == 0 && down() == 0; }

  /// The registry identity of each tally — the single registration site
  /// for the p2sim_lane_* counters: the driver's fold and the monitoring
  /// service's merge-on-read both go through this table, so a scrape can
  /// never disagree with the export about what a shard field means.
  struct Field {
    const char* name;
    const char* help;
    std::uint64_t (MetricShard::*value)() const;
  };
  static const std::array<Field, 3>& fields();

 private:
  void copy_from(const MetricShard& other) {
    busy_node_intervals.store(other.busy(), std::memory_order_relaxed);
    idle_node_intervals.store(other.idle(), std::memory_order_relaxed);
    down_node_intervals.store(other.down(), std::memory_order_relaxed);
  }
};

inline const std::array<MetricShard::Field, 3>& MetricShard::fields() {
  static const std::array<Field, 3> kFields = {{
      {"p2sim_lane_busy_node_intervals_total",
       "Node-intervals spent servicing a PBS job", &MetricShard::busy},
      {"p2sim_lane_idle_node_intervals_total",
       "Node-intervals spent idle (OS noise only)", &MetricShard::idle},
      {"p2sim_lane_down_node_intervals_total",
       "Node-intervals spent out of service after a crash",
       &MetricShard::down},
  }};
  return kFields;
}

}  // namespace p2sim::telemetry
