#include "src/telemetry/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace p2sim::telemetry {
namespace {

std::size_t parse_limit(const std::string& query, std::size_t fallback) {
  const std::size_t pos = query.find("limit=");
  if (pos == std::string::npos) return fallback;
  const long v = std::atol(query.c_str() + pos + 6);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

MonitorService::MonitorService(Session& session, const MonitorConfig& cfg)
    : session_(session), cfg_(cfg) {
  requests_total_ = &session_.registry.counter(
      "p2sim_server_requests_total",
      "HTTP requests served by the monitoring endpoint",
      /*wall_clock=*/true);
  request_errors_total_ = &session_.registry.counter(
      "p2sim_server_request_errors_total",
      "HTTP requests answered with status >= 400", /*wall_clock=*/true);
  inflight_connections_ = &session_.registry.gauge(
      "p2sim_server_inflight_connections",
      "Open client connections on the monitoring endpoint",
      /*wall_clock=*/true);
  request_seconds_ = &session_.registry.histogram(
      "p2sim_server_request_seconds",
      "Wall-clock seconds spent in the request handler",
      exponential_buckets(1e-5, 4.0, 8), /*wall_clock=*/true);
}

void MonitorService::on_interval(const HealthSample& sample) {
  std::lock_guard<std::mutex> lock(svc_mu_);
  reporter_.on_interval(sample);
}

void MonitorService::on_job(const JobSample& sample) {
  std::lock_guard<std::mutex> lock(svc_mu_);
  if (cfg_.max_job_samples == 0) return;
  if (jobs_.size() < cfg_.max_job_samples) {
    jobs_.push_back(sample);
  } else {
    jobs_[next_job_ % cfg_.max_job_samples] = sample;
  }
  ++next_job_;
  next_job_ %= cfg_.max_job_samples;
  ++jobs_seen_;
}

void MonitorService::set_trace_json(std::string trace_json) {
  std::lock_guard<std::mutex> lock(svc_mu_);
  trace_json_ = std::move(trace_json);
}

void MonitorService::note_campaign_complete() {
  std::lock_guard<std::mutex> lock(svc_mu_);
  ++campaigns_done_;
}

void MonitorService::on_connection_delta(int delta) {
  inflight_connections_->add(delta);
}

void MonitorService::on_request(const std::string& /*method*/,
                                const std::string& /*path*/, int status,
                                double handler_seconds) {
  requests_total_->inc();
  if (status >= 400) request_errors_total_->inc();
  request_seconds_->observe(handler_seconds);
}

bool MonitorService::quit_requested() const {
  std::lock_guard<std::mutex> lock(svc_mu_);
  return quit_requested_;
}

HealthSnapshot MonitorService::health() const {
  std::lock_guard<std::mutex> lock(svc_mu_);
  return reporter_.snapshot();
}

std::string MonitorService::metrics_text() const {
  return Registry::render_prometheus(consistent_snapshot(session_));
}

std::string MonitorService::healthz_json() const {
  HealthSnapshot snap;
  std::int64_t campaigns = 0;
  bool trace_ready = false;
  {
    std::lock_guard<std::mutex> lock(svc_mu_);
    snap = reporter_.snapshot();
    campaigns = campaigns_done_;
    trace_ready = !trace_json_.empty();
  }
  std::ostringstream os;
  os << "{\"status\":\"ok\""
     << ",\"campaigns_completed\":" << campaigns
     << ",\"intervals_seen\":" << snap.intervals_seen
     << ",\"intervals_recorded\":" << snap.intervals_recorded
     << ",\"node_samples_expected\":" << snap.node_samples_expected
     << ",\"node_samples_clean\":" << snap.node_samples_clean
     << ",\"node_samples_reprimed\":" << snap.node_samples_reprimed
     << ",\"coverage\":" << json_double(snap.coverage())
     << ",\"mean_mflops\":" << json_double(snap.mean_mflops())
     << ",\"jobs_dispatched\":" << snap.jobs_dispatched
     << ",\"jobs_completed\":" << snap.jobs_completed
     << ",\"jobs_requeued\":" << snap.jobs_requeued
     << ",\"faults_injected\":" << snap.faults_injected
     << ",\"trace_available\":" << json_bool(trace_ready) << "}\n";
  return os.str();
}

std::string MonitorService::days_json() const {
  std::vector<double> gflops;
  std::vector<double> coverage;
  {
    std::lock_guard<std::mutex> lock(svc_mu_);
    gflops = reporter_.daily_gflops();
    coverage = reporter_.daily_coverage();
  }
  std::ostringstream os;
  os << "{\"days\":[";
  for (std::size_t d = 0; d < gflops.size(); ++d) {
    if (d > 0) os << ',';
    os << "{\"day\":" << d << ",\"gflops\":" << json_double(gflops[d])
       << ",\"coverage\":"
       << json_double(d < coverage.size() ? coverage[d] : 1.0) << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string MonitorService::jobs_json(std::size_t limit) const {
  std::vector<JobSample> window;
  std::uint64_t seen = 0;
  {
    std::lock_guard<std::mutex> lock(svc_mu_);
    seen = jobs_seen_;
    window.reserve(jobs_.size());
    if (jobs_.size() < cfg_.max_job_samples) {
      window = jobs_;  // ring not yet wrapped: already chronological
    } else {
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        window.push_back(jobs_[(next_job_ + i) % jobs_.size()]);
      }
    }
  }
  if (limit < window.size()) {
    window.erase(window.begin(),
                 window.end() - static_cast<std::ptrdiff_t>(limit));
  }
  std::ostringstream os;
  os << "{\"jobs_seen\":" << seen << ",\"returned\":" << window.size()
     << ",\"jobs\":[";
  for (std::size_t i = 0; i < window.size(); ++i) {
    const JobSample& j = window[i];
    if (i > 0) os << ',';
    os << "{\"job_id\":" << j.job_id << ",\"user_id\":" << j.user_id
       << ",\"nodes\":" << j.nodes
       << ",\"submit_s\":" << json_double(j.submit_s)
       << ",\"start_s\":" << json_double(j.start_s)
       << ",\"end_s\":" << json_double(j.end_s)
       << ",\"job_mflops\":" << json_double(j.job_mflops)
       << ",\"complete\":" << json_bool(j.complete)
       << ",\"abandoned\":" << json_bool(j.abandoned) << '}';
  }
  os << "]}\n";
  return os.str();
}

util::HttpResponse MonitorService::handle(const util::HttpRequest& req) {
  util::HttpResponse resp;
  if (req.path == kQuitPath) {
    std::lock_guard<std::mutex> lock(svc_mu_);
    quit_requested_ = true;
    resp.body = "shutting down\n";
    return resp;
  }
  if (req.method != "GET") {
    resp.status = 405;
    resp.body = "only GET is served here\n";
    return resp;
  }
  if (req.path == kMetricsPath) {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = metrics_text();
    return resp;
  }
  if (req.path == kHealthzPath) {
    resp.content_type = "application/json";
    resp.body = healthz_json();
    return resp;
  }
  if (req.path == kDaysPath) {
    resp.content_type = "application/json";
    resp.body = days_json();
    return resp;
  }
  if (req.path == kJobsPath) {
    resp.content_type = "application/json";
    resp.body = jobs_json(parse_limit(req.query, cfg_.max_job_samples));
    return resp;
  }
  if (req.path == kTracePath) {
    std::lock_guard<std::mutex> lock(svc_mu_);
    if (trace_json_.empty()) {
      resp.status = 503;
      resp.body = "no completed campaign trace yet\n";
      return resp;
    }
    resp.content_type = "application/json";
    resp.body = trace_json_;
    return resp;
  }
  resp.status = 404;
  resp.body =
      "endpoints: /metrics /healthz /api/days /api/jobs /trace "
      "/quitquitquit\n";
  return resp;
}

}  // namespace p2sim::telemetry
