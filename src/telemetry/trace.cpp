#include "src/telemetry/trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace p2sim::telemetry {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Minimal JSON string escape (names are string literals, but a stray
/// quote must not produce an unloadable trace).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

void append_us(std::string& out, double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  out += buf;
}

void append_value(std::string& out, double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "\"%s\"", v > 0 ? "+Inf" : "-Inf");
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

}  // namespace

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {}

std::size_t Tracer::begin(const char* category, const char* name,
                          double sim_begin_s) {
  ++depth_;
  if (events_.size() >= max_events_) {
    ++dropped_;
    return 0;
  }
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.sim_begin_s = sim_begin_s;
  ev.sim_end_s = sim_begin_s;
  ev.wall_begin_us = wall_now_us();
  ev.wall_end_us = ev.wall_begin_us;
  ev.depth = depth_;
  events_.push_back(std::move(ev));
  return events_.size();  // index + 1
}

void Tracer::end(std::size_t handle, double sim_end_s) {
  if (depth_ > 0) --depth_;
  if (handle == 0 || handle > events_.size()) return;
  TraceEvent& ev = events_[handle - 1];
  ev.sim_end_s = sim_end_s;
  ev.wall_end_us = wall_now_us();
}

void Tracer::arg(std::size_t handle, const char* key, double value) {
  if (handle == 0 || handle > events_.size()) return;
  events_[handle - 1].args.push_back({key, value});
}

std::string Tracer::chrome_trace_json(bool include_wall) const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    append_us(out, ev.sim_begin_s);
    out += ",\"dur\":";
    append_us(out, ev.sim_end_s - ev.sim_begin_s);
    out += ",\"args\":{\"depth\":";
    append_value(out, ev.depth);
    for (const TraceEvent::Arg& a : ev.args) {
      out += ",\"";
      append_escaped(out, a.key);
      out += "\":";
      append_value(out, a.value);
    }
    if (include_wall) {
      char buf[64];
      std::snprintf(buf, sizeof buf, ",\"wall_us\":%lld",
                    static_cast<long long>(ev.wall_end_us -
                                           ev.wall_begin_us));
      out += buf;
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

const char* Tracer::intern(const std::string& s) {
  for (const std::string& have : interned_) {
    if (have == s) return have.c_str();
  }
  interned_.push_back(s);
  return interned_.back().c_str();
}

void Tracer::save_ckpt(util::CkptWriter& w) const {
  w.put_u64(dropped_);
  w.put_i32(depth_);
  w.put_u64(events_.size());
  for (const TraceEvent& ev : events_) {
    w.put_str(ev.category);
    w.put_str(ev.name);
    w.put_f64(ev.sim_begin_s);
    w.put_f64(ev.sim_end_s);
    w.put_i64(ev.wall_begin_us);
    w.put_i64(ev.wall_end_us);
    w.put_i32(ev.depth);
    w.put_u64(ev.args.size());
    for (const TraceEvent::Arg& a : ev.args) {
      w.put_str(a.key);
      w.put_f64(a.value);
    }
  }
}

void Tracer::restore_ckpt(util::CkptReader& r) {
  dropped_ = r.read_u64("tracer.dropped");
  depth_ = r.read_i32("tracer.depth");
  events_.clear();
  std::uint64_t n = r.read_u64("tracer.events");
  events_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent ev;
    ev.category = intern(r.read_str("tracer.category"));
    ev.name = intern(r.read_str("tracer.name"));
    ev.sim_begin_s = r.read_f64("tracer.sim_begin");
    ev.sim_end_s = r.read_f64("tracer.sim_end");
    ev.wall_begin_us = r.read_i64("tracer.wall_begin");
    ev.wall_end_us = r.read_i64("tracer.wall_end");
    ev.depth = r.read_i32("tracer.event_depth");
    std::uint64_t na = r.read_u64("tracer.num_args");
    ev.args.reserve(static_cast<std::size_t>(na));
    for (std::uint64_t j = 0; j < na; ++j) {
      const char* key = intern(r.read_str("tracer.arg_key"));
      ev.args.push_back({key, r.read_f64("tracer.arg_value")});
    }
    events_.push_back(std::move(ev));
  }
}

Span::Span(Tracer* tracer, const char* category, const char* name,
           double sim_begin_s)
    : tracer_(tracer), sim_begin_s_(sim_begin_s) {
  if (tracer_ == nullptr) return;
  handle_ = tracer_->begin(category, name, sim_begin_s);
  open_ = true;
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      handle_(other.handle_),
      sim_begin_s_(other.sim_begin_s_),
      open_(other.open_) {
  other.tracer_ = nullptr;
  other.open_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    if (open_) close(sim_begin_s_);
    tracer_ = other.tracer_;
    handle_ = other.handle_;
    sim_begin_s_ = other.sim_begin_s_;
    open_ = other.open_;
    other.tracer_ = nullptr;
    other.open_ = false;
  }
  return *this;
}

Span::~Span() {
  if (open_) close(sim_begin_s_);
}

void Span::arg(const char* key, double value) {
  if (tracer_ != nullptr && open_) tracer_->arg(handle_, key, value);
}

void Span::close(double sim_end_s) {
  if (tracer_ == nullptr || !open_) return;
  tracer_->end(handle_, sim_end_s);
  open_ = false;
}

}  // namespace p2sim::telemetry
