// The one place the POWER2 clock frequency lives.
//
// The paper quotes rates at the SP2's 66.7 MHz clock, and before this
// header existed the literal 66.7e6 was re-derived inline wherever cycles
// had to become seconds (derived-rate computation, kernel Mflops, profiler
// section reports).  Every cycles<->seconds conversion now goes through
// these helpers; the constant itself is util::MachineClock::kHz, re-exported
// so call sites name the telemetry clock rather than a magic number.
#pragma once

#include <cstdint>

#include "src/util/sim_time.hpp"

namespace p2sim::telemetry {

/// The POWER2 clock in Hz (66.7 MHz) — the campaign's only CPU clock.
inline constexpr double kClockHz = util::MachineClock::kHz;

/// Elapsed simulated seconds for a cycle count at the POWER2 clock.
constexpr double seconds_from_cycles(std::uint64_t cycles) {
  return static_cast<double>(cycles) / kClockHz;
}

/// Cycles elapsed in `seconds` of simulated time at the POWER2 clock.
constexpr double cycles_from_seconds(double seconds) {
  return seconds * kClockHz;
}

}  // namespace p2sim::telemetry
