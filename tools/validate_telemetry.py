#!/usr/bin/env python3
"""Validate the three export files a campaign_dashboard run produces.

Checked against the formats the telemetry layer promises:

  metrics.prom    Prometheus text exposition: every sample carries HELP and
                  TYPE headers, histogram buckets are cumulative and end in
                  +Inf, and every metric name obeys ``p2sim_[a-z0-9_]+``.
  telemetry.jsonl One JSON object per line with ``metric``/``type`` and a
                  value payload matching the type; wall-clock metrics are
                  excluded (the file must be bit-stable across identical
                  simulated campaigns).
  trace.json      Chrome trace_event JSON: a ``traceEvents`` array of
                  complete ("ph":"X") events with numeric ts/dur in
                  microseconds of simulated time.

Cross-checks: every metric in the JSONL stream also appears in the
Prometheus export (same registry, two serializations).

Exposition conformance (both modes): HELP and TYPE appear exactly once per
family, every histogram family exports ``_sum`` and ``_count`` plus a
closing ``le="+Inf"`` bucket, and the +Inf bucket's cumulative value equals
the family's ``_count``.

Usage:  python3 tools/validate_telemetry.py <outdir>
        python3 tools/validate_telemetry.py --scrape <file>

The ``--scrape`` form validates the body of a live ``GET /metrics``
response captured from the monitoring service (e.g. via p2sim_monitord
--scrape-dump); it additionally requires at least one ``p2sim_server_*``
metric, proving the body came from a live server and not a file export.
Exit status 0 when everything holds, 1 with a message per violation.
"""

from __future__ import annotations

import json
import pathlib
import re
import sys

NAME_RE = re.compile(r"^p2sim_[a-z0-9_]+$")
# Prometheus sample line: name, optional {labels}, one float value.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)
KINDS = ("counter", "gauge", "histogram")
# Suffixes Prometheus serialization appends to a histogram family.
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def base_name(sample_name: str) -> str:
    for suffix in HIST_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_value(text: str) -> float | None:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def check_prometheus(path: pathlib.Path) -> tuple[list[str], set[str]]:
    problems: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    sampled: set[str] = set()
    last_bucket: dict[str, float] = {}
    inf_bucket: dict[str, float] = {}
    family_stat: dict[str, set[str]] = {}
    count_value: dict[str, float] = {}
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        if not line:
            problems.append(f"{path.name}:{i}: blank line")
            continue
        if line.startswith("# HELP "):
            fam = line.split()[2]
            if fam in helped:
                problems.append(
                    f"{path.name}:{i}: duplicate HELP for {fam!r}; exactly "
                    f"one per family"
                )
            helped.add(fam)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in KINDS:
                problems.append(f"{path.name}:{i}: malformed TYPE line")
            else:
                if parts[2] in typed:
                    problems.append(
                        f"{path.name}:{i}: duplicate TYPE for {parts[2]!r}; "
                        f"exactly one per family"
                    )
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"{path.name}:{i}: unknown comment form")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"{path.name}:{i}: unparseable sample: {line!r}")
            continue
        name = base_name(m.group("name"))
        sampled.add(name)
        if not NAME_RE.match(name):
            problems.append(
                f"{path.name}:{i}: metric name {name!r} violates "
                f"p2sim_[a-z0-9_]+"
            )
        if name not in typed or name not in helped:
            problems.append(
                f"{path.name}:{i}: sample {name!r} precedes its "
                f"HELP/TYPE headers"
            )
        value = parse_value(m.group("value"))
        if value is None:
            problems.append(
                f"{path.name}:{i}: non-numeric value {m.group('value')!r}"
            )
            continue
        # Histogram buckets must be non-decreasing (they are cumulative)
        # and the family must close with the +Inf bucket.
        if m.group("name").endswith("_bucket"):
            prev = last_bucket.get(name, 0.0)
            if value < prev:
                problems.append(
                    f"{path.name}:{i}: cumulative bucket counts decreased "
                    f"for {name!r}"
                )
            last_bucket[name] = value
            labels = m.group("labels") or ""
            if 'le="' not in labels:
                problems.append(
                    f"{path.name}:{i}: bucket sample without an le label"
                )
            if 'le="+Inf"' in labels:
                inf_bucket[name] = value
        elif m.group("name").endswith("_sum") and name in typed:
            family_stat.setdefault(name, set()).add("sum")
        elif m.group("name").endswith("_count") and name in typed:
            family_stat.setdefault(name, set()).add("count")
            count_value[name] = value
    for name, kind in typed.items():
        if kind == "histogram":
            if name not in last_bucket:
                problems.append(
                    f"{path.name}: histogram {name!r} exported no buckets"
                )
            elif name not in inf_bucket:
                problems.append(
                    f"{path.name}: histogram {name!r} lacks the closing "
                    f'le="+Inf" bucket'
                )
            for stat in ("sum", "count"):
                if stat not in family_stat.get(name, set()):
                    problems.append(
                        f"{path.name}: histogram {name!r} exported no "
                        f"_{stat} sample"
                    )
            if (name in inf_bucket and name in count_value
                    and inf_bucket[name] != count_value[name]):
                problems.append(
                    f"{path.name}: histogram {name!r} +Inf bucket "
                    f"({inf_bucket[name]}) != _count ({count_value[name]})"
                )
    if not sampled:
        problems.append(f"{path.name}: no samples at all")
    return problems, sampled


def check_scrape(path: pathlib.Path) -> list[str]:
    """Validate a captured live /metrics response body."""
    problems, names = check_prometheus(path)
    if not any(n.startswith("p2sim_server_") for n in names):
        problems.append(
            f"{path.name}: no p2sim_server_* metric in the scrape; the "
            f"body does not look like a live monitoring-service response"
        )
    return problems


def check_jsonl(path: pathlib.Path) -> tuple[list[str], set[str]]:
    problems: list[str] = []
    names: set[str] = set()
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path.name}:{i}: invalid JSON ({exc})")
            continue
        name = obj.get("metric", "")
        if not NAME_RE.match(name):
            problems.append(f"{path.name}:{i}: bad metric name {name!r}")
        if name in names:
            problems.append(f"{path.name}:{i}: duplicate metric {name!r}")
        names.add(name)
        kind = obj.get("type")
        if kind not in KINDS:
            problems.append(f"{path.name}:{i}: bad type {kind!r}")
        if kind == "histogram":
            buckets = obj.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                problems.append(f"{path.name}:{i}: histogram sans buckets")
        elif not isinstance(obj.get("value"), (int, float)):
            problems.append(f"{path.name}:{i}: missing numeric value")
        # The default JSONL export is the deterministic sim-time view;
        # wall-clock metrics leaking in would break bit-stability.
        if obj.get("wall_clock"):
            problems.append(
                f"{path.name}:{i}: wall-clock metric {name!r} in the "
                f"sim-time export"
            )
    if not names:
        problems.append(f"{path.name}: no metrics at all")
    return problems, names


def check_trace(path: pathlib.Path) -> list[str]:
    problems: list[str] = []
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path.name}: invalid JSON ({exc})"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path.name}: missing or empty traceEvents array"]
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "dur"):
            if key not in ev:
                problems.append(f"{path.name}: event {i} lacks {key!r}")
                break
        else:
            if ev["ph"] != "X":
                problems.append(
                    f"{path.name}: event {i} has ph={ev['ph']!r}, expected "
                    f"complete events only"
                )
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                problems.append(f"{path.name}: event {i} has bad ts")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                problems.append(f"{path.name}: event {i} has bad dur")
        if len(problems) > 20:
            problems.append(f"{path.name}: ... further problems suppressed")
            break
    return problems


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--scrape":
        scrape = pathlib.Path(sys.argv[2])
        if not scrape.is_file():
            print(f"validate_telemetry: {scrape}: missing", file=sys.stderr)
            return 1
        problems = check_scrape(scrape)
        for p in problems:
            print(f"validate_telemetry: {p}", file=sys.stderr)
        if problems:
            print(f"validate_telemetry: {len(problems)} problem(s)",
                  file=sys.stderr)
            return 1
        print("validate_telemetry: scrape OK")
        return 0
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    outdir = pathlib.Path(sys.argv[1])
    problems: list[str] = []
    for required in ("metrics.prom", "telemetry.jsonl", "trace.json"):
        if not (outdir / required).is_file():
            problems.append(f"{required}: missing from {outdir}")
    if problems:
        for p in problems:
            print(f"validate_telemetry: {p}", file=sys.stderr)
        return 1

    prom_problems, prom_names = check_prometheus(outdir / "metrics.prom")
    jsonl_problems, jsonl_names = check_jsonl(outdir / "telemetry.jsonl")
    problems = prom_problems + jsonl_problems
    problems += check_trace(outdir / "trace.json")

    # Same registry, two serializations: the sim-time JSONL stream must be
    # a subset of the full Prometheus export.
    for name in sorted(jsonl_names - prom_names):
        problems.append(
            f"metric {name!r} in telemetry.jsonl but not metrics.prom"
        )

    for p in problems:
        print(f"validate_telemetry: {p}", file=sys.stderr)
    if problems:
        print(f"validate_telemetry: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    print(
        f"validate_telemetry: OK ({len(prom_names)} prometheus metrics, "
        f"{len(jsonl_names)} jsonl metrics)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
