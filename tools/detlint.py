#!/usr/bin/env python3
"""Determinism & concurrency static auditor for the p2sim source tree.

The campaign's core guarantee -- bit-identical outputs for every
DriverConfig::threads value, with a lock-free hot path -- is enforced
dynamically by the fingerprint tests and the TSan CI job, which check the
runs we happen to exercise, not the code.  This auditor closes the gap by
checking the *source* against the annotation vocabulary declared in
src/check/annotate.hpp (P2SIM_PAR_SAFE, P2SIM_SERIAL_ONLY,
P2SIM_GUARDED_BY, P2SIM_ORDERED_FOLD).  Four rule families:

  1. Phase purity: every WorkloadDriver::phase_* method is classified
     parallel/serial against kPhases (src/workload/driver.hpp).  A
     parallel phase may only reach functions annotated P2SIM_PAR_SAFE
     (or living in a P2SIM_PAR_SAFE_FILE file), transitively, via a
     call-graph approximation over src/; reaching a P2SIM_SERIAL_ONLY
     function is an error, as is a serial phase dispatching to the pool.
  2. Nondeterminism bans: no std::random_device / rand / srand / time( /
     wall-clock reads outside src/util/rng.* and the telemetry wall-clock
     module (src/telemetry/trace.*); no unordered_map/unordered_set in
     src/ unless the declaration carries P2SIM_ORDERED_FOLD (iteration
     order must be laundered before any export).
  3. Concurrency manifest: every std::atomic / std::mutex /
     std::condition_variable member in src/ must have an entry in
     tools/concurrency_manifest.json (site, owner, protocol), the
     manifest may not list dead entries, every memory-order argument must
     match an order the manifest declares for that atomic, and
     P2SIM_GUARDED_BY annotations must agree with the manifest's guards
     lists in both directions.
  4. RNG stream discipline: code reachable from a parallel phase may only
     draw from a NodeLane-owned RNG stream (`rng` on the lane, or a
     `<lane>.rng` chain whose base is a NodeLane) -- never the driver's
     master stream or any other shared stream.

The call graph is a regex-level approximation (no compiler): receivers
are resolved through per-class member-type and per-function
parameter-type maps, and unresolvable calls conservatively fan out to
every same-name definition in src/.  That over-approximation is the
point: it can demand a redundant annotation, but it cannot silently let
a serial-state touch into the parallel closure.

Run from the repo root:  python3 tools/detlint.py
Self-check the auditor:  python3 tools/detlint.py --self-test
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

DRIVER_HPP = "src/workload/driver.hpp"
DRIVER_CPP = "src/workload/driver.cpp"
MANIFEST = "tools/concurrency_manifest.json"
ANNOTATE_HPP = "src/check/annotate.hpp"

# The annotation macros' home (skipped in every scan: it *defines* the
# vocabulary, it does not use it).
SCAN_SKIP = (ANNOTATE_HPP,)

# Wall-clock / entropy sources are legal only where randomness and wall
# time are the module's whole job.
NONDET_ALLOWLIST = (
    "src/util/rng.hpp",
    "src/util/rng.cpp",
    "src/telemetry/trace.hpp",
    "src/telemetry/trace.cpp",
    "src/util/http_server.cpp",
    "src/util/http_client.cpp",
)

NONDET_RES = (
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    (re.compile(r"\b__rdtsc\b"), "__rdtsc"),
)

UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")

SITE_RE = re.compile(
    r"(?:mutable\s+)?std::(atomic(?:<[^;]*?>)?|atomic_flag|mutex|"
    r"shared_mutex|condition_variable(?:_any)?)\s+(\w+)\s*[;{=]"
)
ORDER_RE = re.compile(r"std::memory_order_(\w+)\b")
GUARDED_RE = re.compile(r"\b(\w+)\s+P2SIM_GUARDED_BY\((\w+)\)")

# Draw methods of util::Xoshiro256StarStar -- the RNG-discipline rule
# watches for these being invoked through a receiver inside the parallel
# closure.
DRAW_METHODS = (
    "next", "uniform", "below", "range", "normal", "lognormal_median",
    "exponential", "poisson", "chance", "split",
)
DRAW_RE = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:(?:\.|->)[A-Za-z_]\w*"
    r"(?:\[[^\]]*\])?)*)\s*(?:\.|->)\s*(" + "|".join(DRAW_METHODS) +
    r")\s*\("
)

KEYWORDS = frozenset(
    "if for while switch return sizeof catch do else new delete throw "
    "alignof decltype static_cast dynamic_cast reinterpret_cast "
    "const_cast static_assert defined assert int double float bool char "
    "long short unsigned signed void auto".split()
)

CALL_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?([A-Za-z_~]\w*)\s*\(")

CTRL_KEYWORDS = frozenset(
    "if for while switch catch do else try".split())


# --------------------------------------------------------------------------
# Source cleaning & structural scan
# --------------------------------------------------------------------------

def clean_source(text: str, keep_strings: bool = False) -> str:
    """Blank comments, preprocessor lines and (optionally) literal
    contents, preserving offsets and line structure exactly."""
    out = list(text)
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if at_line_start and c == "#":
            while i < n and text[i] != "\n":
                if text[i - 1] == "\\" and text[i] == "\n":
                    pass
                out[i] = " "
                i += 1
                # honor line continuations
                if i < n and text[i] == "\n" and text[i - 1] == "\\":
                    out[i - 1] = " "
                    i += 1
            continue
        if c == "\n":
            at_line_start = True
            i += 1
            continue
        if not c.isspace():
            at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if not keep_strings:
                        out[i] = " "
                    i += 1
                if i < n and text[i] != quote and text[i] != "\n":
                    if not keep_strings:
                        out[i] = " "
                i += 1
            i += 1
            continue
        i += 1
    return "".join(out)


def match_brace(text: str, open_idx: int) -> int:
    """Index of the `}` matching the `{` at open_idx (cleaned text)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


class FuncDef:
    def __init__(self, name, cls, rel, line, chunk, params, body):
        self.name = name
        self.cls = cls            # enclosing/qualifying class, or None
        self.rel = rel            # repo-relative file path
        self.line = line
        self.chunk = chunk        # signature text preceding the body
        self.params = params      # raw parameter-list text
        self.body = body          # cleaned body text (braces included)
        self.tags: set[str] = set()

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def __repr__(self):
        return f"<{self.qual} {self.rel}:{self.line}>"


class ClassExtent:
    def __init__(self, name, start, end):
        self.name = name
        self.start = start
        self.end = end
        self.members: dict[str, str] = {}


def _find_function(chunk: str):
    """If `chunk { ...` opens a function definition, return
    (name, cls_override, params); else None."""
    for m in re.finditer(r"([A-Za-z_~]\w*)\s*\(", chunk):
        name = m.group(1)
        if name in KEYWORDS or name.isupper() or name.startswith("P2SIM_"):
            continue
        # match the parameter parens
        depth = 0
        close = -1
        for i in range(m.end() - 1, len(chunk)):
            if chunk[i] == "(":
                depth += 1
            elif chunk[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close < 0:
            continue
        rest = chunk[close + 1:].strip()
        if rest.startswith(":"):          # ctor init list
            pass
        elif re.fullmatch(
                r"(?:const\s*)?(?:noexcept\s*(?:\([^)]*\))?\s*)?"
                r"(?:->\s*[\w:<>&*,\s]+?)?\s*(?:override\s*)?"
                r"(?:final\s*)?", rest):
            pass
        else:
            continue
        qual = re.search(r"([A-Za-z_]\w*)\s*::\s*~?$", chunk[:m.start(1)])
        cls_override = qual.group(1) if qual else None
        params = chunk[m.end():close]
        return name, cls_override, params
    return None


def scan_file(rel: str, text: str):
    """One linear pass: function definitions + class extents with member
    types.  Returns (defs, class_extents, cleaned_text)."""
    clean = clean_source(text)
    defs: list[FuncDef] = []
    classes: list[ClassExtent] = []
    # scope stack entries: (kind, name_or_None, close_idx)
    stack: list[tuple[str, str | None, int]] = []
    i = 0
    n = len(clean)
    last_boundary = 0
    while i < n:
        c = clean[i]
        if c in ";}":
            last_boundary = i + 1
            while stack and stack[-1][2] <= i:
                stack.pop()
            i += 1
            continue
        if c != "{":
            i += 1
            continue
        while stack and stack[-1][2] <= i:
            stack.pop()
        chunk = clean[last_boundary:i].strip()
        chunk = re.sub(r"^(?:public|private|protected)\s*:\s*", "", chunk)
        close = match_brace(clean, i)
        if re.match(r"^namespace\b", chunk):
            stack.append(("namespace", None, close))
            last_boundary = i + 1
            i += 1
            continue
        if re.search(r"\benum\b", chunk):
            i = close + 1
            last_boundary = i
            continue
        cm = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)"
                       r"(?:\s+final)?\s*(?::[^{]*)?$", chunk)
        fn = _find_function(chunk)
        if cm and not fn:
            classes.append(ClassExtent(cm.group(1), i, close))
            stack.append(("class", cm.group(1), close))
            last_boundary = i + 1
            i += 1
            continue
        if fn:
            name, cls_override, params = fn
            cls = cls_override
            if cls is None:
                for kind, cname, _ in reversed(stack):
                    if kind == "class":
                        cls = cname
                        break
            d = FuncDef(name.lstrip("~"), cls, rel,
                        line_of(clean, last_boundary + 1), chunk,
                        params, clean[i:close + 1])
            if re.search(r"\bP2SIM_PAR_SAFE\b(?!_FILE)", chunk):
                d.tags.add("par_safe")
            if re.search(r"\bP2SIM_SERIAL_ONLY\b", chunk):
                d.tags.add("serial_only")
            defs.append(d)
            i = close + 1
            last_boundary = i
            continue
        # control block, braced initializer, lambda, ... -- opaque
        first = re.match(r"([A-Za-z_]\w*)", chunk)
        if first and first.group(1) in CTRL_KEYWORDS:
            i += 1          # control at file scope: descend normally
            last_boundary = i
            continue
        i = close + 1
        last_boundary = i
    # member types per class (class body minus nested function bodies is
    # approximated by scanning lines; good enough for receiver typing)
    for ce in classes:
        body = clean[ce.start:ce.end]
        for mm in re.finditer(
                r"(?:^|(?<=[;{}]))\s*(?:mutable\s+|static\s+|const\s+)*"
                r"((?:[\w:]+)(?:<[^;<>{}]*>)?)\s*[&*\s]\s*(\w+)\s*"
                r"(?:=[^;]*|\{[^;{}]*\})?;", body):
            ty, name = mm.group(1), mm.group(2)
            base = re.sub(r"<.*", "", ty).split("::")[-1]
            if base and base not in ("return",):
                ce.members.setdefault(name, base)
    return defs, classes, clean


def param_types(params: str) -> dict[str, str]:
    out: dict[str, str] = {}
    depth = 0
    piece = ""
    pieces = []
    for ch in params:
        if ch in "<(":
            depth += 1
        elif ch in ">)":
            depth -= 1
        if ch == "," and depth == 0:
            pieces.append(piece)
            piece = ""
        else:
            piece += ch
    if piece.strip():
        pieces.append(piece)
    for p in pieces:
        p = p.split("=")[0].strip()
        m = re.match(r"(?:const\s+)?((?:[\w:]+)(?:<[^<>]*>)?)"
                     r"[\s&*]+(\w+)\s*$", p)
        if m:
            base = re.sub(r"<.*", "", m.group(1)).split("::")[-1]
            out[m.group(2)] = base
    return out


LOCAL_DECL_KEYWORDS = KEYWORDS | frozenset(
    "case break continue goto using typedef struct class enum namespace "
    "template typename public private protected constexpr static const "
    "mutable co_return co_await co_yield".split())

LOCAL_DECL_RE = re.compile(
    r"(?:^|(?<=[;{}(]))\s*(?:const\s+|constexpr\s+|static\s+)*"
    r"((?:[\w:]+)(?:<[^<>]*>)?)"
    r"[\s&*]+([A-Za-z_]\w*)\s*(?=[=({;:])")


def local_types(body: str) -> dict[str, str]:
    """Types of local variables declared in a (cleaned) function body,
    name -> unqualified base type.  Same shape as param_types(); lets the
    resolver bind member calls on locals (``Power2Core core(cfg);
    core.run_counted(...)``) to the exact class instead of fanning out to
    every same-name definition in the tree."""
    out: dict[str, str] = {}
    for m in LOCAL_DECL_RE.finditer(body):
        base = re.sub(r"<.*", "", m.group(1)).split("::")[-1]
        name = m.group(2)
        if base in LOCAL_DECL_KEYWORDS or name in LOCAL_DECL_KEYWORDS:
            continue
        out.setdefault(name, base)
    return out


# --------------------------------------------------------------------------
# Model of the whole tree
# --------------------------------------------------------------------------

class Tree:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.defs: list[FuncDef] = []
        self.by_name: dict[str, list[FuncDef]] = {}
        self.classes: dict[str, ClassExtent] = {}
        self.clean: dict[str, str] = {}
        self.clean_strings: dict[str, str] = {}
        self.extents_by_file: dict[str, list[ClassExtent]] = {}
        self.par_safe_files: set[str] = set()
        for path in sorted((root / "src").rglob("*.[ch]pp")):
            rel = path.relative_to(root).as_posix()
            if rel in SCAN_SKIP:
                continue
            text = path.read_text()
            defs, classes, clean = scan_file(rel, text)
            self.defs.extend(defs)
            self.extents_by_file[rel] = classes
            for ce in classes:
                prev = self.classes.get(ce.name)
                if prev is None:
                    self.classes[ce.name] = ce
                else:
                    for k, v in ce.members.items():
                        prev.members.setdefault(k, v)
            self.clean[rel] = clean
            self.clean_strings[rel] = clean_source(text, keep_strings=True)
            if re.search(r"\bP2SIM_PAR_SAFE_FILE\b", clean):
                self.par_safe_files.add(rel)
        for d in self.defs:
            self.by_name.setdefault(d.name, []).append(d)
        self._apply_decl_tags()
        for d in self.defs:
            if d.rel in self.par_safe_files:
                d.tags.add("par_safe")

    def _apply_decl_tags(self):
        """Annotations on declarations (the canonical site is the header
        declaration) are unioned onto matching definitions."""
        decl_tags: dict[tuple[str | None, str], set[str]] = {}
        for rel, clean in self.clean.items():
            extents = self.extents_by_file.get(rel, [])
            for m in re.finditer(
                    r"\bP2SIM_(PAR_SAFE|SERIAL_ONLY)\b(?!_FILE)", clean):
                tag = ("par_safe" if m.group(1) == "PAR_SAFE"
                       else "serial_only")
                stmt = clean[m.end():m.end() + 400]
                stmt = re.split(r"[;{]", stmt)[0]
                fm = None
                for cand in re.finditer(r"([A-Za-z_~]\w*)\s*\(", stmt):
                    if (cand.group(1) in KEYWORDS
                            or cand.group(1).isupper()):
                        continue
                    fm = cand
                    break
                if not fm:
                    continue
                name = fm.group(1).lstrip("~")
                cls = None
                best = -1
                for ce in extents:
                    if ce.start <= m.start() < ce.end and ce.start > best:
                        cls = ce.name
                        best = ce.start
                decl_tags.setdefault((cls, name), set()).add(tag)
        for d in self.defs:
            d.tags |= decl_tags.get((d.cls, d.name), set())
            if not d.tags:
                d.tags |= decl_tags.get((None, d.name), set())

    def resolve(self, recv: str | None, name: str,
                ctx: FuncDef | None) -> list[FuncDef]:
        cands = self.by_name.get(name, [])
        if not cands:
            return []
        if recv:
            ty = None
            if ctx is not None:
                ty = param_types(ctx.params).get(recv)
                if ty is None:
                    lt = getattr(ctx, "_local_types", None)
                    if lt is None:
                        lt = ctx._local_types = local_types(ctx.body)
                    ty = lt.get(recv)
                if ty is None and ctx.cls in self.classes:
                    ty = self.classes[ctx.cls].members.get(recv)
            if ty is None:
                # Chained receiver (`kernel.body.size()` reaches here with
                # recv="body"): collect the types every class gives a
                # member of that name.  A unanimous type is adopted; with
                # disagreement the call is still skippable when no
                # candidate definition lives on any of those types --
                # whichever owner is right, the target is external.
                owner_tys = {ce.members[recv]
                             for ce in self.classes.values()
                             if recv in ce.members}
                if owner_tys:
                    exact = [d for d in cands if d.cls in owner_tys]
                    if len(owner_tys) == 1 or not exact:
                        return exact
            if ty is not None:
                # A determined receiver type is authoritative: an empty
                # match means the method lives on an external type (std::
                # containers and friends), not on anything we audit.
                return [d for d in cands if d.cls == ty]
            return cands
        if ctx is not None:
            local = [d for d in cands
                     if d.cls == ctx.cls or d.cls is None]
            if local:
                return local
        return cands

    def calls_in(self, body: str, ctx: FuncDef | None):
        """Yield (recv, name) pairs for call sites in a body."""
        for m in CALL_RE.finditer(body):
            recv, name = m.group(1), m.group(2)
            name = name.lstrip("~")
            if name in KEYWORDS or name.isupper():
                continue
            if name.startswith("P2SIM_"):
                continue
            if recv is None:
                prefix = body[:m.start(2)].rstrip()
                if prefix.endswith("std::"):
                    continue
                stem = None
                if prefix.endswith("."):
                    stem = prefix[:-1].rstrip()
                elif prefix.endswith("->"):
                    stem = prefix[:-2].rstrip()
                if stem is not None and stem.endswith(")"):
                    # Member call on a temporary (`duration_cast<..>(d)
                    # .count()`): the receiver type is not textually
                    # recoverable -- skip rather than fan out to every
                    # same-name definition.  Indexed receivers
                    # (`lanes[i].run_pipeline(`) still resolve by name.
                    continue
            yield recv, name


# --------------------------------------------------------------------------
# Rule family 1: phase purity
# --------------------------------------------------------------------------

PHASE_ROW_RE = re.compile(
    r"\{Phase::k(\w+),\s*\"([\w-]+)\",\s*(true|false)\}")


def parse_phases(tree: Tree) -> list[tuple[str, str, bool]]:
    text = tree.clean_strings.get(DRIVER_HPP, "")
    return [(m.group(1), m.group(2), m.group(3) == "true")
            for m in PHASE_ROW_RE.finditer(text)]


def parallel_closure(tree: Tree, problems: list[str]):
    """BFS the call graph from every parallel phase's pool dispatch.
    Returns the reached FuncDefs (annotated or not)."""
    phases = parse_phases(tree)
    if not phases:
        problems.append(
            f"{DRIVER_HPP}: could not parse kPhases -- the phase table "
            f"is the auditor's ground truth; update detlint if its shape "
            f"changed")
        return {}
    phase_methods = {f"phase_{name.replace('-', '_')}": par
                     for _, name, par in phases}
    driver_defs = {d.name: d for d in tree.defs
                   if d.cls == "WorkloadDriver"
                   and d.name.startswith("phase_")
                   and "CampaignState" in d.params}
    for meth, par in phase_methods.items():
        if meth not in driver_defs:
            problems.append(
                f"{DRIVER_HPP}: kPhases names phase method {meth!r} but "
                f"{DRIVER_CPP} does not define WorkloadDriver::{meth}")
    for name, d in sorted(driver_defs.items()):
        if name not in phase_methods:
            problems.append(
                f"{d.rel}:{d.line}: WorkloadDriver::{name} is not "
                f"classified in kPhases ({DRIVER_HPP}); every phase_* "
                f"method must have a kPhases row")
    dispatch_re = re.compile(r"\bpool\s*\.\s*run\s*\(")
    roots: list[tuple[FuncDef, str]] = []   # (ctx def, lambda body)
    for name, d in driver_defs.items():
        par = phase_methods.get(name)
        hits = list(dispatch_re.finditer(d.body))
        if par is False and hits:
            problems.append(
                f"{d.rel}:{d.line}: serial phase WorkloadDriver::{name} "
                f"dispatches to the task pool; kPhases classifies it "
                f"serial -- flip the kPhases row or drop the dispatch")
        if par is True:
            if not hits:
                problems.append(
                    f"{d.rel}:{d.line}: parallel phase "
                    f"WorkloadDriver::{name} has no pool.run( dispatch; "
                    f"the auditor cannot locate its parallel region")
            for h in hits:
                # arg extent of pool.run(...), then lambda bodies inside
                depth = 0
                argend = len(d.body)
                for i in range(h.end() - 1, len(d.body)):
                    if d.body[i] == "(":
                        depth += 1
                    elif d.body[i] == ")":
                        depth -= 1
                        if depth == 0:
                            argend = i
                            break
                args = d.body[h.end():argend]
                for lm in re.finditer(r"\]\s*(?:\([^)]*\))?\s*\{", args):
                    lend = match_brace(args, lm.end() - 1)
                    roots.append((d, args[lm.end() - 1:lend + 1]))
    # BFS
    reached: dict[int, tuple[FuncDef, str]] = {}   # id -> (def, via)
    queue: list[tuple[FuncDef, str]] = []
    for ctx, lam in roots:
        for recv, cname in tree.calls_in(lam, ctx):
            for target in tree.resolve(recv, cname, ctx):
                if id(target) not in reached:
                    reached[id(target)] = (
                        target, f"{ctx.qual} (parallel dispatch)")
                    queue.append((target, ctx.qual))
    while queue:
        d, _ = queue.pop()
        for recv, cname in tree.calls_in(d.body, d):
            for target in tree.resolve(recv, cname, d):
                if id(target) not in reached:
                    reached[id(target)] = (target, d.qual)
                    queue.append((target, d.qual))
    return reached


def check_phase_purity(tree: Tree) -> list[str]:
    problems: list[str] = []
    reached = parallel_closure(tree, problems)
    for d, via in sorted(reached.values(),
                         key=lambda rv: (rv[0].rel, rv[0].line)):
        if "serial_only" in d.tags:
            problems.append(
                f"{d.rel}:{d.line}: {d.qual} is P2SIM_SERIAL_ONLY but is "
                f"reachable from a parallel phase (via {via}); serial-"
                f"only functions own cross-node state and must stay out "
                f"of the node-advance closure")
        elif "par_safe" not in d.tags:
            problems.append(
                f"{d.rel}:{d.line}: {d.qual} is reachable from a "
                f"parallel phase (via {via}) but is not annotated "
                f"P2SIM_PAR_SAFE; annotate it (or mark the file "
                f"P2SIM_PAR_SAFE_FILE) after checking it touches only "
                f"lane-local state")
    return problems


# --------------------------------------------------------------------------
# Rule family 2: nondeterminism bans
# --------------------------------------------------------------------------

def check_nondeterminism(tree: Tree) -> list[str]:
    problems: list[str] = []
    for rel in sorted(tree.clean):
        clean = tree.clean[rel]
        in_allow = rel in NONDET_ALLOWLIST
        for i, line in enumerate(clean.splitlines(), start=1):
            if not in_allow:
                for rx, what in NONDET_RES:
                    if rx.search(line):
                        problems.append(
                            f"{rel}:{i}: {what} is a nondeterminism "
                            f"source; only src/util/rng.* and "
                            f"src/telemetry/trace.* may touch entropy "
                            f"or wall clocks -- route through "
                            f"util::Xoshiro256StarStar or "
                            f"telemetry::wall_now_us()")
            if (UNORDERED_RE.search(line)
                    and "P2SIM_ORDERED_FOLD" not in line):
                problems.append(
                    f"{rel}:{i}: unordered container without "
                    f"P2SIM_ORDERED_FOLD; hash-iteration order is not "
                    f"deterministic across libraries -- use std::map / "
                    f"sorted vectors, or annotate the declaration after "
                    f"laundering the fold into a deterministic order")
    return problems


# --------------------------------------------------------------------------
# Rule family 3: concurrency manifest
# --------------------------------------------------------------------------

def load_manifest(root: pathlib.Path):
    path = root / MANIFEST
    if not path.is_file():
        return None, [f"{MANIFEST}: missing; every std::atomic / "
                      f"std::mutex site must be documented there"]
    try:
        data = json.loads(path.read_text())
    except ValueError as e:
        return None, [f"{MANIFEST}: invalid JSON: {e}"]
    entries = data.get("sites")
    if not isinstance(entries, list):
        return None, [f"{MANIFEST}: top-level object must carry a "
                      f"'sites' array"]
    return entries, []


def check_manifest(tree: Tree) -> list[str]:
    entries, problems = load_manifest(tree.root)
    if entries is None:
        return problems
    kind_of = {"atomic": "atomic", "atomic_flag": "atomic",
               "mutex": "mutex", "shared_mutex": "mutex",
               "condition_variable": "condition_variable",
               "condition_variable_any": "condition_variable"}
    # detected sites: (rel, symbol) -> (kind, line)
    found: dict[tuple[str, str], tuple[str, int]] = {}
    for rel in sorted(tree.clean):
        for i, line in enumerate(tree.clean[rel].splitlines(), start=1):
            for m in SITE_RE.finditer(line):
                kind = kind_of[re.sub(r"<.*", "", m.group(1))]
                found[(rel, m.group(2))] = (kind, i)
    by_key = {}
    for e in entries:
        key = (e.get("file", ""), e.get("symbol", ""))
        if key in by_key:
            problems.append(
                f"{MANIFEST}: duplicate entry for {key[0]}:{key[1]}")
        by_key[key] = e
        for field in ("owner", "protocol", "kind"):
            if not e.get(field):
                problems.append(
                    f"{MANIFEST}: entry {key[0]}:{key[1]} is missing "
                    f"required field {field!r}")
    for (rel, sym), (kind, ln) in sorted(found.items()):
        e = by_key.get((rel, sym))
        if e is None:
            problems.append(
                f"{rel}:{ln}: std::{kind} {sym!r} is not in {MANIFEST}; "
                f"new synchronization may not land undocumented -- add a "
                f"site/owner/protocol entry")
        elif e.get("kind") != kind:
            problems.append(
                f"{MANIFEST}: entry {rel}:{sym} says kind "
                f"{e.get('kind')!r} but the source declares a "
                f"std::{kind}")
    for (rel, sym), e in sorted(by_key.items()):
        if (rel, sym) not in found:
            problems.append(
                f"{MANIFEST}: dead entry {rel}:{sym} -- no such "
                f"std::atomic/mutex/condition_variable declaration in "
                f"src/; delete the entry or restore the site")
    # memory-order arguments must match a documented atomic's orders
    atomics = {sym: e for (rel, sym), e in by_key.items()
               if e.get("kind") == "atomic"}
    seen_orders: dict[str, set[str]] = {sym: set() for sym in atomics}
    for rel in sorted(tree.clean):
        for i, line in enumerate(tree.clean[rel].splitlines(), start=1):
            for m in ORDER_RE.finditer(line):
                order = m.group(1)
                owner = next((sym for sym in atomics if sym in line),
                             None)
                if owner is None:
                    problems.append(
                        f"{rel}:{i}: std::memory_order_{order} on a line "
                        f"naming no manifest-documented atomic; the "
                        f"manifest must tie every explicit order to its "
                        f"atomic's protocol")
                    continue
                seen_orders[owner].add(order)
                allowed = atomics[owner].get("orders", [])
                if order not in allowed:
                    problems.append(
                        f"{rel}:{i}: {owner} used with "
                        f"std::memory_order_{order}, which {MANIFEST} "
                        f"does not list for it (allowed: "
                        f"{allowed or 'none'})")
    for sym, e in sorted(atomics.items()):
        for order in e.get("orders", []):
            if order not in seen_orders.get(sym, set()):
                problems.append(
                    f"{MANIFEST}: {sym} lists order {order!r} but no "
                    f"source line uses it; trim the manifest to the real "
                    f"protocol")
    # P2SIM_GUARDED_BY <-> guards lists, both directions
    annotated: dict[tuple[str, str], set[str]] = {}
    for rel in sorted(tree.clean):
        for m in GUARDED_RE.finditer(tree.clean[rel]):
            annotated.setdefault((rel, m.group(2)), set()).add(m.group(1))
    mutexes = {(relsym[0], relsym[1]): e
               for relsym, e in by_key.items() if e.get("kind") == "mutex"}
    for (rel, mu), members in sorted(annotated.items()):
        e = mutexes.get((rel, mu))
        guards = set(e.get("guards", [])) if e else set()
        for mem in sorted(members - guards):
            problems.append(
                f"{rel}: member {mem!r} is P2SIM_GUARDED_BY({mu}) but "
                f"{MANIFEST} does not list it in that mutex's guards")
    for (rel, mu), e in sorted(mutexes.items()):
        have = annotated.get((rel, mu), set())
        for mem in sorted(set(e.get("guards", [])) - have):
            problems.append(
                f"{MANIFEST}: {rel}:{mu} guards {mem!r} but the source "
                f"carries no P2SIM_GUARDED_BY({mu}) on that member")
    return problems


# --------------------------------------------------------------------------
# Rule family 4: RNG stream discipline
# --------------------------------------------------------------------------

def check_rng_discipline(tree: Tree) -> list[str]:
    problems: list[str] = []
    scratch: list[str] = []
    reached = parallel_closure(tree, scratch)
    bodies: list[tuple[FuncDef | None, str, str, int]] = []
    for d, _ in reached.values():
        bodies.append((d, d.body, d.rel, d.line))
    for ctx, body, rel, line in bodies:
        if rel in ("src/util/rng.hpp", "src/util/rng.cpp"):
            continue    # the generator's own internals
        for m in DRAW_RE.finditer(body):
            chain = re.sub(r"\[[^\]]*\]", "", m.group(1))
            parts = re.split(r"\.|->", chain)
            meth = m.group(2)
            ok = False
            # A generator constructed by value inside the function itself
            # (FaultSchedule::draw's counter-based splitmix/xoshiro chain)
            # cannot be a shared stream: every call owns its instance and
            # the seed is a pure function of the arguments.  References
            # deliberately do not match -- aliasing a shared stream
            # through a local name stays banned.
            if len(parts) == 1 and ctx is not None and re.search(
                    r"\b(?:util::)?(?:SplitMix64|Xoshiro256StarStar)"
                    r"\s+" + re.escape(parts[0]) + r"\s*[({=]",
                    ctx.body):
                ok = True
            # Power2Core's rng_ is object-owned and the parallel phase
            # constructs a fresh core per measurement task, so its stream
            # is task-local and seeded deterministically from the config.
            if not ok and parts == ["rng_"]:
                ok = ctx is not None and ctx.cls == "Power2Core"
            if not ok and parts[-1] == "rng":
                if len(parts) == 1:
                    ok = (ctx is not None and ctx.cls == "NodeLane")
                else:
                    base_ty = None
                    if ctx is not None:
                        base_ty = param_types(ctx.params).get(parts[0])
                        if base_ty is None and ctx.cls in tree.classes:
                            base_ty = tree.classes[ctx.cls].members.get(
                                parts[0])
                    ok = base_ty == "NodeLane"
            if not ok:
                where = ctx.qual if ctx else "parallel dispatch"
                problems.append(
                    f"{rel}:{line}: {where} draws "
                    f"{m.group(1)}.{meth}(...) inside the parallel "
                    f"closure; parallel-phase code may only draw from a "
                    f"NodeLane-owned stream (the lane's `rng` member) -- "
                    f"shared streams make results depend on thread "
                    f"interleaving")
    return problems


# --------------------------------------------------------------------------
# Driver / self-test
# --------------------------------------------------------------------------

def run_lint(root: pathlib.Path) -> int:
    if not (root / DRIVER_HPP).is_file():
        print(
            f"detlint: {root} does not look like the p2sim source tree "
            f"(missing {DRIVER_HPP})", file=sys.stderr)
        return 2
    tree = Tree(root)
    problems = (
        check_phase_purity(tree)
        + check_nondeterminism(tree)
        + check_manifest(tree)
        + check_rng_discipline(tree)
    )
    for p in problems:
        print(f"detlint: {p}", file=sys.stderr)
    if problems:
        print(f"detlint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("detlint: OK")
    return 0


def self_test() -> int:
    """Prove the auditor detects each rule family's defect class."""
    import shutil
    import tempfile

    failures: list[str] = []

    def scenario(name, mutate, expect_substr, expect_rc=1):
        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td)
            shutil.copytree(REPO / "src", tmp / "src")
            (tmp / "tools").mkdir()
            shutil.copy2(REPO / MANIFEST, tmp / MANIFEST)
            if mutate is not None:
                mutate(tmp)
            import io
            import contextlib
            err = io.StringIO()
            with contextlib.redirect_stderr(err), \
                    contextlib.redirect_stdout(io.StringIO()):
                rc = run_lint(tmp)
            output = err.getvalue()
            if rc != expect_rc:
                failures.append(
                    f"{name}: expected rc={expect_rc}, got {rc}\n{output}")
            elif expect_substr and expect_substr not in output:
                failures.append(
                    f"{name}: expected {expect_substr!r} in output, "
                    f"got:\n{output}")
            else:
                print(f"self-test: {name}: ok")

    def edit(tmp, rel, old, new, count=1):
        p = tmp / rel
        text = p.read_text()
        assert old in text, f"self-test fixture drift: {old!r} not in {rel}"
        p.write_text(text.replace(old, new, count))

    # family 1: phase purity -------------------------------------------
    scenario("pristine tree is clean", None, "", expect_rc=0)
    scenario(
        "phase purity: dropped P2SIM_PAR_SAFE fails",
        lambda tmp: edit(tmp, "src/workload/lane.hpp",
                         "P2SIM_PAR_SAFE void advance_interval",
                         "void advance_interval"),
        "not annotated P2SIM_PAR_SAFE")
    scenario(
        "phase purity: serial-only leaking into the closure fails",
        lambda tmp: edit(tmp, "src/workload/lane.hpp",
                         "P2SIM_PAR_SAFE void advance_interval",
                         "P2SIM_SERIAL_ONLY void advance_interval"),
        "P2SIM_SERIAL_ONLY but is reachable")
    scenario(
        "phase purity: serial phase dispatching to the pool fails",
        lambda tmp: edit(
            tmp, "src/workload/driver.cpp",
            "void WorkloadDriver::phase_nfs_grant(CampaignState& st) {",
            "void WorkloadDriver::phase_nfs_grant(CampaignState& st) {\n"
            "  st.pool.run(0, [](std::size_t, std::size_t) {});"),
        "serial phase WorkloadDriver::phase_nfs_grant dispatches")

    scenario(
        "phase purity: local-typed receiver resolves into the closure",
        # measure_quiet reaches run_counted through a local Power2Core;
        # the resolver must bind that edge exactly, so dropping the tag
        # on run_counted's declaration is caught.
        lambda tmp: edit(tmp, "src/power2/core.hpp",
                         "P2SIM_PAR_SAFE RunResult run_counted",
                         "RunResult run_counted"),
        "Power2Core::run_counted")
    scenario(
        "phase purity: temporary receivers do not fan out by name",
        # `.size()` on a call result has no recoverable receiver type;
        # it must NOT be charged to every size() definition in the tree.
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "    interval_busy_s = step.busy_s;",
            "    interval_busy_s = step.busy_s;\n"
            "    (void)std::to_string(outcome_count).size();"),
        "", expect_rc=0)

    # family 2: nondeterminism bans ------------------------------------
    scenario(
        "nondeterminism: wall-clock read outside trace.* fails",
        lambda tmp: edit(
            tmp, "src/cluster/node.cpp",
            "namespace p2sim::cluster {",
            "namespace p2sim::cluster {\n"
            "inline double bad_now() {"
            " return static_cast<double>(time(nullptr)); }"),
        "nondeterminism source")
    scenario(
        "nondeterminism: unordered container without annotation fails",
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "  LaneStep step;",
            "  LaneStep step;\n  std::unordered_map<int, int> scratch;"),
        "unordered container without P2SIM_ORDERED_FOLD")
    scenario(
        "nondeterminism: P2SIM_ORDERED_FOLD permits the container",
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "  LaneStep step;",
            "  LaneStep step;\n"
            "  P2SIM_ORDERED_FOLD std::unordered_map<int, int> scratch;"),
        "", expect_rc=0)

    # family 3: concurrency manifest -----------------------------------
    scenario(
        "manifest: undocumented mutex fails",
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "  LaneStep step;",
            "  LaneStep step;\n  std::mutex extra_mu_;"),
        "is not in tools/concurrency_manifest.json")
    def dead_entry(tmp):
        p = tmp / MANIFEST
        data = json.loads(p.read_text())
        data["sites"].append({
            "file": "src/workload/lane.hpp", "symbol": "ghost_mu_",
            "kind": "mutex", "owner": "workload::NodeLane",
            "protocol": "does not exist"})
        p.write_text(json.dumps(data))
    scenario("manifest: dead entry fails", dead_entry, "dead entry")
    scenario(
        "manifest: undeclared memory order fails",
        lambda tmp: edit(
            tmp, "src/power2/signature.cpp",
            "snapshot_hits_.fetch_add(1, std::memory_order_relaxed)",
            "snapshot_hits_.fetch_add(1, std::memory_order_seq_cst)"),
        "does not list for it")
    scenario(
        "manifest: dropped P2SIM_GUARDED_BY fails",
        lambda tmp: edit(
            tmp, "src/power2/signature.hpp",
            " P2SIM_GUARDED_BY(mu_)", "", count=1),
        "carries no P2SIM_GUARDED_BY")

    # family 4: RNG stream discipline ----------------------------------
    scenario(
        "rng discipline: shared-stream draw in the closure fails",
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "    interval_busy_s = step.busy_s;",
            "    interval_busy_s = step.busy_s;\n"
            "    (void)shared_stream->uniform(0.0, 1.0);"),
        "may only draw from a NodeLane-owned stream")
    scenario(
        "rng discipline: lane-owned draw in the closure passes",
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "    interval_busy_s = step.busy_s;",
            "    interval_busy_s = step.busy_s;\n"
            "    (void)rng.uniform(0.0, 1.0);"),
        "", expect_rc=0)
    scenario(
        "rng discipline: locally-constructed generator passes",
        # FaultSchedule::draw's pattern: a by-value generator seeded from
        # the call's own arguments is task-local by construction.
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "    interval_busy_s = step.busy_s;",
            "    interval_busy_s = step.busy_s;\n"
            "    util::Xoshiro256StarStar own(7);\n"
            "    (void)own.uniform(0.0, 1.0);"),
        "", expect_rc=0)
    scenario(
        "rng discipline: reference alias to a stream stays banned",
        # A reference named like a local must not launder a shared stream
        # through the locally-constructed-generator exemption.
        lambda tmp: edit(
            tmp, "src/workload/lane.hpp",
            "    interval_busy_s = step.busy_s;",
            "    interval_busy_s = step.busy_s;\n"
            "    util::Xoshiro256StarStar& alias = *shared_stream;\n"
            "    (void)alias.uniform(0.0, 1.0);"),
        "may only draw from a NodeLane-owned stream")

    if failures:
        for f in failures:
            print(f"self-test FAILURE: {f}", file=sys.stderr)
        return 1
    print("self-test: all scenarios passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the auditor's built-in scenarios")
    parser.add_argument("--root", type=pathlib.Path, default=REPO,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
