#!/usr/bin/env python3
"""Single entry point for the repo's rule-based static analyzers.

Runs every linter in tools/ and prints one combined summary:

  * lint_events.py -- HPM counter plumbing (enum/table/emit coverage,
    wrap-access confinement, member init, metric names, field table);
  * detlint.py    -- determinism & concurrency audit (phase purity,
    nondeterminism bans, the concurrency manifest, RNG discipline).

Exit status is 0 only when every linter passes.  Each linter remains
independently runnable (and self-testable with --self-test); this runner
exists so ctest and CI have one lint fixture to gate on.

Run from the repo root:  python3 tools/lint_all.py
Self-test every linter:  python3 tools/lint_all.py --self-test
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent

LINTERS = ("lint_events.py", "detlint.py")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run every linter's built-in scenarios")
    args = parser.parse_args()
    flags = ["--self-test"] if args.self_test else []
    results: list[tuple[str, int]] = []
    for name in LINTERS:
        proc = subprocess.run(
            [sys.executable, str(TOOLS / name), *flags], check=False)
        results.append((name, proc.returncode))
    failed = [name for name, rc in results if rc != 0]
    for name, rc in results:
        status = "OK" if rc == 0 else f"FAILED (exit {rc})"
        print(f"lint_all: {name}: {status}")
    if failed:
        print(f"lint_all: {len(failed)} of {len(results)} linter(s) "
              f"failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"lint_all: all {len(results)} linters passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
