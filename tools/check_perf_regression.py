#!/usr/bin/env python3
"""Perf-regression gate for the parallel campaign engine.

Reads a freshly produced BENCH_parallel_speedup.json and the committed
baseline (bench/parallel_speedup_baseline.json), and fails when the wide
(8-thread) campaign speedup drops below the committed floor minus the
tolerance.  Two outcomes deliberately do not gate on speed:

  * "scaling_valid": false in the report -- the bench refused to publish
    scaling figures because the host has fewer hardware threads than the
    widest run.  The checker SKIPS (exit 0) with the refusal reason, so a
    small CI runner never fails on scheduling noise.
  * byte-identity, by contrast, always gates: a report carrying
    "table2_identical": false fails regardless of host width, because
    determinism is thread-count-independent.
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "bench" / "parallel_speedup_baseline.json"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", type=pathlib.Path,
                    help="BENCH_parallel_speedup.json from a fresh run")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=DEFAULT_BASELINE,
                    help="committed speedup floor (default: %(default)s)")
    args = ap.parse_args()

    try:
        report = json.loads(args.report.read_text())
    except (OSError, ValueError) as e:
        print(f"perf-regression: cannot read report {args.report}: {e}")
        return 1
    try:
        base = json.loads(args.baseline.read_text())
    except (OSError, ValueError) as e:
        print(f"perf-regression: cannot read baseline {args.baseline}: {e}")
        return 1

    if not report.get("table2_identical", False):
        print("perf-regression: FAIL: Table 2 is not byte-identical across "
              "thread counts (determinism gates on every host)")
        return 1

    if not report.get("scaling_valid", False):
        reason = report.get("scaling_refusal",
                            "bench withheld scaling figures")
        print(f"perf-regression: SKIP: {reason}")
        return 0

    threads = int(base["threads"])
    floor = float(base["min_speedup"])
    tol = float(base["tolerance"])
    run = next((r for r in report.get("runs", [])
                if r.get("threads") == threads), None)
    if run is None or "speedup" not in run:
        print(f"perf-regression: FAIL: report has no speedup entry for "
              f"threads={threads}")
        return 1

    speedup = float(run["speedup"])
    gate = floor - tol
    ok = speedup >= gate
    print(f"perf-regression: threads={threads} speedup {speedup:.2f}x "
          f"vs committed floor {floor:.2f}x - tolerance {tol:.2f} "
          f"=> gate {gate:.2f}x: {'OK' if ok else 'FAIL'}")
    if ok and "serial_fraction" in run:
        print(f"perf-regression: serial fraction at threads={threads}: "
              f"{100.0 * float(run['serial_fraction']):.1f}%")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
