#!/usr/bin/env python3
"""Perf-regression gate for the campaign engine's bench reports.

Two kinds of report, selected with --kind:

  * --kind speedup (default): reads a freshly produced
    BENCH_parallel_speedup.json and the committed baseline
    (bench/parallel_speedup_baseline.json), and fails when the wide
    (8-thread) campaign speedup drops below the committed floor minus
    the tolerance.
  * --kind archive: reads BENCH_archive_query.json and the committed
    baseline (bench/archive_query_baseline.json), and fails when the
    single-column scan rate or the load speedup over text drops below
    its floor, or the archive/text size ratio rises above its ceiling.

Two outcomes deliberately do not gate on speed:

  * "scaling_valid": false in a speedup report -- the bench refused to
    publish scaling figures because the host has fewer hardware threads
    than the widest run.  The checker SKIPS (exit 0) with the refusal
    reason, so a small CI runner never fails on scheduling noise.
  * byte-identity, by contrast, always gates: "table2_identical": false
    or "queries_identical": false fails regardless of host width,
    because determinism and query fidelity are host-independent.
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINES = {
    "speedup": REPO / "bench" / "parallel_speedup_baseline.json",
    "archive": REPO / "bench" / "archive_query_baseline.json",
}


def check_speedup(report: dict, base: dict) -> int:
    if not report.get("table2_identical", False):
        print("perf-regression: FAIL: Table 2 is not byte-identical across "
              "thread counts (determinism gates on every host)")
        return 1

    if not report.get("scaling_valid", False):
        reason = report.get("scaling_refusal",
                            "bench withheld scaling figures")
        print(f"perf-regression: SKIP: {reason}")
        return 0

    threads = int(base["threads"])
    floor = float(base["min_speedup"])
    tol = float(base["tolerance"])
    run = next((r for r in report.get("runs", [])
                if r.get("threads") == threads), None)
    if run is None or "speedup" not in run:
        print(f"perf-regression: FAIL: report has no speedup entry for "
              f"threads={threads}")
        return 1

    speedup = float(run["speedup"])
    gate = floor - tol
    ok = speedup >= gate
    print(f"perf-regression: threads={threads} speedup {speedup:.2f}x "
          f"vs committed floor {floor:.2f}x - tolerance {tol:.2f} "
          f"=> gate {gate:.2f}x: {'OK' if ok else 'FAIL'}")
    if ok and "serial_fraction" in run:
        print(f"perf-regression: serial fraction at threads={threads}: "
              f"{100.0 * float(run['serial_fraction']):.1f}%")
    return 0 if ok else 1


def check_archive(report: dict, base: dict) -> int:
    if not report.get("queries_identical", False):
        print("perf-regression: FAIL: archive query results are not "
              "byte-identical to the text-path oracle (fidelity gates on "
              "every host)")
        return 1

    tol = float(base.get("tolerance", 0.0))
    failures = []

    scan = float(report.get("scan_mrecs_per_s", 0.0))
    scan_floor = float(base["min_scan_mrecs_per_s"])
    scan_ok = scan >= scan_floor * (1.0 - tol)
    print(f"perf-regression: scan {scan:.1f} M recs/s vs floor "
          f"{scan_floor:.1f} (tol {100.0 * tol:.0f}%): "
          f"{'OK' if scan_ok else 'FAIL'}")
    if not scan_ok:
        failures.append("scan")

    load = float(report.get("load_speedup_vs_text", 0.0))
    load_floor = float(base["min_load_speedup_vs_text"])
    load_ok = load >= load_floor * (1.0 - tol)
    print(f"perf-regression: load speedup {load:.2f}x vs floor "
          f"{load_floor:.2f}x (tol {100.0 * tol:.0f}%): "
          f"{'OK' if load_ok else 'FAIL'}")
    if not load_ok:
        failures.append("load")

    ratio = float(report.get("size_ratio", 1.0))
    ceiling = float(base["max_size_ratio"])
    # Size is deterministic for a fixed campaign: no tolerance.
    ratio_ok = ratio <= ceiling
    print(f"perf-regression: size ratio {100.0 * ratio:.1f}% vs ceiling "
          f"{100.0 * ceiling:.1f}%: {'OK' if ratio_ok else 'FAIL'}")
    if not ratio_ok:
        failures.append("size")

    if failures:
        print(f"perf-regression: FAIL: {', '.join(failures)}")
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", type=pathlib.Path,
                    help="BENCH_*.json from a fresh run")
    ap.add_argument("--kind", choices=sorted(BASELINES),
                    default="speedup",
                    help="which report/baseline pair to gate "
                         "(default: %(default)s)")
    ap.add_argument("--baseline", type=pathlib.Path, default=None,
                    help="committed floors (default: per --kind)")
    args = ap.parse_args()
    baseline = args.baseline or BASELINES[args.kind]

    try:
        report = json.loads(args.report.read_text())
    except (OSError, ValueError) as e:
        print(f"perf-regression: cannot read report {args.report}: {e}")
        return 1
    try:
        base = json.loads(baseline.read_text())
    except (OSError, ValueError) as e:
        print(f"perf-regression: cannot read baseline {baseline}: {e}")
        return 1

    if args.kind == "archive":
        return check_archive(report, base)
    return check_speedup(report, base)


if __name__ == "__main__":
    sys.exit(main())
