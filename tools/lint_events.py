#!/usr/bin/env python3
"""Repo-specific lint for the HPM counter plumbing.

The POWER2 monitor model threads each of the 22 Table 1 counters through
three layers that the compiler cannot check against each other:

  1. the ``HpmCounter`` enum (src/hpm/events.hpp),
  2. the Table 1 metadata array ``kTable`` (src/hpm/events.cpp),
  3. the emit sites in ``PerformanceMonitor::accumulate``
     (src/hpm/monitor.cpp).

A counter that exists in the enum but is never emitted silently reads as
zero for a whole campaign -- exactly the class of bug behind the paper's
divide-counter pathology.  This lint enforces:

  * every enum member has a ``kTable`` entry and an emit site;
  * ``kTable`` carries exactly ``kNumCounters`` entries;
  * raw 32-bit register access (``.raw()`` / ``wrap_delta``) stays inside
    the wrap-handling module (src/rs2hpm/snapshot.*) -- anywhere else,
    arithmetic on wrapped registers is a latent mod-2^32 bug;
  * every data member of the counter-carrying structs has an in-class
    initializer, so a partially filled struct can never leak
    indeterminate counts into the accounting identities;
  * every telemetry metric name in src/ matches ``p2sim_[a-z0-9_]+`` and
    is registered at exactly one site -- a second registration site could
    silently diverge in kind or help text, and a misnamed metric throws at
    runtime in the middle of a campaign;
  * the signature field table (src/power2/field_table.hpp) exactly
    partitions the ``EventCounts`` members into scaled rows and declared
    unscaled fields -- a counter missing from both would silently stay
    zero under the closed-form accrual path and the on-disk signature
    store, and every row's rate member must exist on ``EventSignature``.

Run from the repo root:  python3 tools/lint_events.py
Self-check the linter:   python3 tools/lint_events.py --self-test
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

EVENTS_HPP = "src/hpm/events.hpp"
EVENTS_CPP = "src/hpm/events.cpp"
MONITOR_CPP = "src/hpm/monitor.cpp"
EVENT_COUNTS_HPP = "src/power2/event_counts.hpp"
FIELD_TABLE_HPP = "src/power2/field_table.hpp"
SIGNATURE_HPP = "src/power2/signature.hpp"

# Wrap correction is this module's whole job; raw register access is legal
# only here.
RAW_ACCESS_ALLOWLIST = (
    "src/rs2hpm/snapshot.hpp",
    "src/rs2hpm/snapshot.cpp",
)

# Structs whose members travel through counter arithmetic; every field must
# be value-initialized in-class.
INIT_CHECKED_HEADERS = (
    "src/power2/event_counts.hpp",
    "src/power2/signature.hpp",
    "src/hpm/monitor.hpp",
    "src/rs2hpm/snapshot.hpp",
    "src/rs2hpm/derived.hpp",
    "src/rs2hpm/daemon.hpp",
    "src/rs2hpm/job_monitor.hpp",
    # Fault-injection rates and the loss-reconciliation tallies: an
    # indeterminate probability or counter here silently breaks the
    # "every injected fault accounted for" identity.
    "src/fault/fault.hpp",
    "src/analysis/loss.hpp",
    # Telemetry carries campaign tallies too: an indeterminate field in a
    # health sample or snapshot would poison the dashboard reconciliation.
    "src/telemetry/health.hpp",
    "src/telemetry/reporter.hpp",
    # The parallel engine: an indeterminate shard counter, lane output or
    # pool bookkeeping field would surface as thread-count-dependent
    # results, which the bit-identity contract forbids.
    "src/telemetry/shard.hpp",
    "src/util/task_pool.hpp",
    "src/workload/lane.hpp",
    # Crash consistency: an indeterminate offset in the checkpoint reader
    # or an uninitialized resume interval would turn a clean restart into
    # silent state divergence.
    "src/util/ckpt.hpp",
    "src/workload/checkpoint.hpp",
    # The monitoring plane: request/response fields, server bookkeeping and
    # the service's job-ring cursors cross the driver/HTTP-loop thread
    # boundary; an indeterminate status code or ring index here would be a
    # use-of-uninitialized on every scrape.
    "src/telemetry/service.hpp",
    "src/util/http_server.hpp",
    "src/util/http_client.hpp",
    # The columnar archive: an indeterminate chunk directory field,
    # report counter or scan statistic would corrupt the on-disk format
    # or mis-render a query; the byte-identity and fidelity contracts
    # both assume every field starts defined.
    "src/archive/format.hpp",
    "src/archive/writer.hpp",
    "src/archive/reader.hpp",
    "src/archive/query.hpp",
)

# Telemetry metric names: full-string shape every registration must obey
# (the registry also enforces this at runtime; the lint catches it before a
# campaign does) and the literal-site scanner.  Only the registry
# implementation itself is excluded -- it holds the name-shape prefix
# constant, not registration sites.  The lane-shard counters (shard.hpp)
# and the p2sim_server_* monitoring metrics (service.cpp) ARE scanned:
# each must have exactly one registration site like any other metric.
METRIC_NAME_RE = re.compile(r"^p2sim_[a-z0-9_]+$")
_METRIC_LITERAL_RE = re.compile(r'"(p2sim_[^"]*)"')
METRIC_SCAN_EXCLUDE = ("src/telemetry/metrics.",)

# Only these member types are indeterminate without an initializer; class
# types (vectors, maps, mutexes) default-construct to a defined state.
_ARITHMETIC_TYPE_RE = re.compile(
    r"\b(u?int\d*_t|std::u?int\d+_t|size_t|std::size_t|double|float|bool|"
    r"char|int|long|short|unsigned|signed)\b|std::array<"
)


def parse_enum_members(text: str) -> list[str]:
    """Members of ``enum class HpmCounter`` in declaration order."""
    m = re.search(r"enum class HpmCounter[^{]*\{(.*?)\};", text, re.DOTALL)
    if not m:
        return []
    members = []
    for line in m.group(1).splitlines():
        line = line.split("//")[0].strip()
        mm = re.match(r"(k[A-Za-z0-9]+)\s*(?:=\s*\d+)?\s*,?", line)
        if mm:
            members.append(mm.group(1))
    return members


def parse_num_counters(text: str) -> int | None:
    m = re.search(r"kNumCounters\s*=\s*(\d+)", text)
    return int(m.group(1)) if m else None


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def check_enum_coverage(root: pathlib.Path) -> list[str]:
    problems: list[str] = []
    hpp = (root / EVENTS_HPP).read_text()
    cpp = strip_comments((root / EVENTS_CPP).read_text())
    mon = strip_comments((root / MONITOR_CPP).read_text())

    members = parse_enum_members(hpp)
    if not members:
        return [f"{EVENTS_HPP}: could not parse HpmCounter enum"]

    declared = parse_num_counters(hpp)
    if declared is not None and declared != len(members):
        problems.append(
            f"{EVENTS_HPP}: kNumCounters = {declared} but the HpmCounter "
            f"enum has {len(members)} members"
        )

    table_refs = re.findall(r"HpmCounter::(k[A-Za-z0-9]+)", cpp)
    if declared is not None and len(table_refs) != declared:
        problems.append(
            f"{EVENTS_CPP}: kTable lists {len(table_refs)} counters, "
            f"expected kNumCounters = {declared}"
        )
    # Aliases (kCommWaitSlot / kIoWaitSlot) resolve to enum members, so an
    # emit through an alias still covers the underlying counter.
    aliases = dict(
        re.findall(
            r"HpmCounter\s+(k[A-Za-z0-9]+)\s*=\s*HpmCounter::(k[A-Za-z0-9]+)",
            strip_comments(hpp),
        )
    )
    emitted = set(re.findall(r"HpmCounter::(k[A-Za-z0-9]+)", mon))
    for alias_name, target in aliases.items():
        if re.search(rf"\b{alias_name}\b", mon):
            emitted.add(target)

    for member in members:
        if member not in table_refs:
            problems.append(
                f"{EVENTS_CPP}: HpmCounter::{member} has no kTable entry "
                f"(no Table 1 label/slot metadata)"
            )
        if member not in emitted:
            problems.append(
                f"{MONITOR_CPP}: HpmCounter::{member} is never emitted in "
                f"PerformanceMonitor::accumulate -- it would read zero for "
                f"a whole campaign"
            )
    return problems


def check_raw_access(root: pathlib.Path) -> list[str]:
    problems: list[str] = []
    for path in sorted((root / "src").rglob("*.[ch]pp")):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_ACCESS_ALLOWLIST:
            continue
        text = strip_comments(path.read_text())
        for i, line in enumerate(text.splitlines(), start=1):
            if re.search(r"\.raw\(\)", line) or "wrap_delta(" in line:
                problems.append(
                    f"{rel}:{i}: raw 32-bit counter register access outside "
                    f"the wrap-handling module (rs2hpm/snapshot); use "
                    f"ExtendedCounters totals instead"
                )
    return problems


# A data-member declaration: type tokens then one or more identifiers,
# terminated by ';'.  Lines with parentheses and no initializer are taken
# to be function declarations.
_MEMBER_RE = re.compile(
    r"^(?:const\s+)?[A-Za-z_][\w:<>,\s\*&]*?[\s&\*]"
    r"([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*;\s*$"
)
_SKIP_RE = re.compile(
    r"^\s*(using|typedef|friend|static|enum|struct|class|public|private|"
    r"protected|template|explicit|return|#)"
)


def check_member_init(root: pathlib.Path) -> list[str]:
    problems: list[str] = []
    for rel in INIT_CHECKED_HEADERS:
        path = root / rel
        if not path.exists():
            problems.append(f"{rel}: listed for member-init lint but missing")
            continue
        text = strip_comments(path.read_text())
        struct_name = None
        depth_at_struct = None
        depth = 0
        for i, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.strip()
            m = re.match(r"(?:struct|class)\s+([A-Za-z_]\w*)[^;]*\{", line)
            if m and struct_name is None:
                struct_name = m.group(1)
                depth_at_struct = depth
            depth += raw_line.count("{") - raw_line.count("}")
            if struct_name is not None and depth <= depth_at_struct:
                struct_name = None
                continue
            if struct_name is None or _SKIP_RE.match(line):
                continue
            # Only flat member declarations: inside the struct body proper,
            # not nested inside a member function.
            if depth != depth_at_struct + 1:
                continue
            if "=" in line or re.search(r"\{.*\}\s*;", line):
                continue  # has an initializer
            if "(" in line:
                continue  # function declaration / constructor
            # Containers (vector/map/...) default-construct to a defined
            # state even when their element type is arithmetic; only bare
            # arithmetic members and std::array are indeterminate.
            if "<" in line and not re.match(
                    r"^(?:mutable\s+|const\s+)*std::array<", line):
                continue
            if not _ARITHMETIC_TYPE_RE.search(line):
                continue  # class-type member: default-constructed, defined
            m = _MEMBER_RE.match(line)
            if m:
                names = m.group(1)
                problems.append(
                    f"{rel}:{i}: member '{names}' of {struct_name} has no "
                    f"in-class initializer; indeterminate counts would "
                    f"poison the accounting identities"
                )
    return problems


_TABLE_ROW_RE = re.compile(
    r'\{\s*"(\w+)"\s*,\s*&EventSignature::(\w+)\s*,\s*&EventCounts::(\w+)\s*,?\s*\}'
)


def check_field_table(root: pathlib.Path) -> list[str]:
    """kScaledFields + kUnscaledFields exactly partition EventCounts.

    The closed-form accrual path and the signature store iterate the table
    instead of naming fields, so an EventCounts member absent from both
    lists would silently read zero for a whole campaign -- the same defect
    class as a missing monitor emit site, one layer down.
    """
    problems: list[str] = []
    counts_text = strip_comments((root / EVENT_COUNTS_HPP).read_text())
    table_text = strip_comments((root / FIELD_TABLE_HPP).read_text())
    sig_text = strip_comments((root / SIGNATURE_HPP).read_text())

    m = re.search(r"struct EventCounts\s*\{(.*?)\n\};", counts_text, re.DOTALL)
    if not m:
        return [f"{EVENT_COUNTS_HPP}: could not parse struct EventCounts"]
    members = []
    for line in m.group(1).splitlines():
        line = line.strip()
        if "(" in line:
            continue  # derived-sum accessors, not data
        mm = re.match(r"std::uint64_t\s+(\w+)\s*=", line)
        if mm:
            members.append(mm.group(1))
    if not members:
        return [f"{EVENT_COUNTS_HPP}: found no EventCounts data members"]

    rows = _TABLE_ROW_RE.findall(table_text)
    if not rows:
        return [f"{FIELD_TABLE_HPP}: could not parse any kScaledFields rows"]
    um = re.search(r"kUnscaledFields\s*=\s*\{(.*?)\}\s*;", table_text,
                   re.DOTALL)
    unscaled = re.findall(r'"(\w+)"', um.group(1)) if um else []

    sm = re.search(r"struct EventSignature\s*\{(.*?)\n\};", sig_text,
                   re.DOTALL)
    sig_members = (
        set(re.findall(r"(\w+)\s*=\s*0(?:\.0)?\s*[,;]", sm.group(1)))
        if sm else set()
    )

    declared = re.search(r"std::array<ScaledField,\s*(\d+)>", table_text)
    if declared is not None and int(declared.group(1)) != len(rows):
        problems.append(
            f"{FIELD_TABLE_HPP}: kScaledFields declares "
            f"{declared.group(1)} rows but defines {len(rows)}"
        )

    scaled = [counter for _, _, counter in rows]
    for name, rate, counter in rows:
        if name != counter:
            problems.append(
                f"{FIELD_TABLE_HPP}: row {name!r} names counter "
                f"EventCounts::{counter}; the store-format name must match "
                f"the counter member"
            )
        if rate not in sig_members:
            problems.append(
                f"{FIELD_TABLE_HPP}: row {name!r} references "
                f"EventSignature::{rate}, which {SIGNATURE_HPP} does not "
                f"declare"
            )

    covered: dict[str, int] = {}
    for name in scaled + unscaled:
        covered[name] = covered.get(name, 0) + 1
        if name not in members:
            problems.append(
                f"{FIELD_TABLE_HPP}: {name!r} is not an EventCounts member"
            )
    for name, times in covered.items():
        if times > 1:
            problems.append(
                f"{FIELD_TABLE_HPP}: {name!r} appears {times} times across "
                f"kScaledFields and kUnscaledFields; the lists must "
                f"partition EventCounts"
            )
    for member in members:
        if member not in covered:
            problems.append(
                f"{FIELD_TABLE_HPP}: EventCounts::{member} is not covered "
                f"by the field table (neither a kScaledFields row nor a "
                f"kUnscaledFields entry) -- the closed-form accrual path "
                f"and the signature store would silently drop it"
            )
    return problems


def check_metric_names(root: pathlib.Path) -> list[str]:
    """Every p2sim_* metric literal in src/ is well-formed and unique.

    Uniqueness is per-site, not per-name-string: a metric registered from
    two places can diverge in kind or help text, and the second site would
    throw std::invalid_argument mid-campaign on a kind clash.  Comment
    stripping runs first so documentation may mention metric names freely.
    """
    problems: list[str] = []
    sites: dict[str, list[str]] = {}
    for path in sorted((root / "src").rglob("*.[ch]pp")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith(METRIC_SCAN_EXCLUDE):
            continue
        text = strip_comments(path.read_text())
        for i, line in enumerate(text.splitlines(), start=1):
            for name in _METRIC_LITERAL_RE.findall(line):
                where = f"{rel}:{i}"
                if not METRIC_NAME_RE.match(name):
                    problems.append(
                        f"{where}: metric name {name!r} violates "
                        f"p2sim_[a-z0-9_]+ (lowercase, digits, underscores)"
                    )
                sites.setdefault(name, []).append(where)
    for name, where in sorted(sites.items()):
        if len(where) > 1:
            problems.append(
                f"metric {name!r} registered at {len(where)} sites "
                f"({', '.join(where)}); each metric must have exactly one "
                f"registration site"
            )
    return problems


def run_lint(root: pathlib.Path) -> int:
    if not (root / EVENTS_HPP).is_file():
        print(
            f"lint_events: {root} does not look like the p2sim source tree "
            f"(missing {EVENTS_HPP})",
            file=sys.stderr,
        )
        return 2
    problems = (
        check_enum_coverage(root)
        + check_raw_access(root)
        + check_member_init(root)
        + check_metric_names(root)
        + check_field_table(root)
    )
    for p in problems:
        print(f"lint_events: {p}", file=sys.stderr)
    if problems:
        print(f"lint_events: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("lint_events: OK")
    return 0


def self_test() -> int:
    """Prove the linter detects the defect classes it exists to catch."""
    import tempfile

    failures = []

    def scenario(name, mutate, expect_substr):
        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td)
            for rel in (EVENTS_HPP, EVENTS_CPP, MONITOR_CPP,
                        EVENT_COUNTS_HPP, FIELD_TABLE_HPP):
                dest = tmp / rel
                dest.parent.mkdir(parents=True, exist_ok=True)
                dest.write_text((REPO / rel).read_text())
            for rel in INIT_CHECKED_HEADERS + RAW_ACCESS_ALLOWLIST:
                src = REPO / rel
                if src.exists():
                    dest = tmp / rel
                    dest.parent.mkdir(parents=True, exist_ok=True)
                    dest.write_text(src.read_text())
            mutate(tmp)
            problems = (
                check_enum_coverage(tmp)
                + check_raw_access(tmp)
                + check_member_init(tmp)
                + check_metric_names(tmp)
                + check_field_table(tmp)
            )
            if not any(expect_substr in p for p in problems):
                failures.append(
                    f"{name}: expected a problem containing "
                    f"{expect_substr!r}, got {problems!r}"
                )

    def drop_table_entry(tmp):
        p = tmp / EVENTS_CPP
        text = re.sub(r"\{HpmCounter::kDmaWrite.*?\},\n", "",
                      p.read_text(), flags=re.DOTALL)
        p.write_text(text)

    def drop_emit_site(tmp):
        p = tmp / MONITOR_CPP
        text = p.read_text()
        p.write_text(
            text.replace(
                "adds[index_of(HpmCounter::kDcacheStore)] += "
                "ev.dcache_store;",
                "",
            )
        )

    def add_raw_access(tmp):
        p = tmp / "src/hpm/monitor.cpp"
        p.write_text(
            p.read_text()
            + "\n// bad: std::uint64_t x = b.raw()[0] + 1;\n"
            + "inline int bad(p2sim::hpm::CounterBank& b)"
            + " { return int(b.raw()[0]); }\n"
        )

    def drop_initializer(tmp):
        p = tmp / "src/power2/event_counts.hpp"
        p.write_text(
            p.read_text().replace(
                "std::uint64_t cycles = 0;", "std::uint64_t cycles;", 1
            )
        )

    def drop_fault_rate_initializer(tmp):
        p = tmp / "src/fault/fault.hpp"
        p.write_text(
            p.read_text().replace(
                "std::int64_t node_crashes = 0;",
                "std::int64_t node_crashes;", 1
            )
        )

    def drop_loss_tally_initializer(tmp):
        p = tmp / "src/analysis/loss.hpp"
        p.write_text(
            p.read_text().replace(
                "double mean_coverage = 0.0;", "double mean_coverage;", 1
            )
        )

    def copy_in(tmp, rel):
        dest = tmp / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((REPO / rel).read_text())
        return dest

    def bad_metric_name(tmp):
        p = copy_in(tmp, "src/pbs/scheduler.cpp")
        p.write_text(
            p.read_text().replace(
                '"p2sim_sched_queue_depth"', '"p2sim_Sched-Queue"', 1
            )
        )

    def duplicate_metric_site(tmp):
        copy_in(tmp, "src/pbs/scheduler.cpp")
        p = copy_in(tmp, "src/rs2hpm/daemon.cpp")
        p.write_text(
            p.read_text().replace(
                '"p2sim_daemon_coverage"', '"p2sim_sched_queue_depth"', 1
            )
        )

    def drop_health_initializer(tmp):
        p = tmp / "src/telemetry/health.hpp"
        p.write_text(
            p.read_text().replace(
                "std::int64_t faults_injected = 0;",
                "std::int64_t faults_injected;", 1
            )
        )

    scenario("missing kTable entry", drop_table_entry, "no kTable entry")
    scenario("missing emit site", drop_emit_site, "never emitted")
    scenario("raw access outside snapshot", add_raw_access, "raw 32-bit")
    scenario("missing member init", drop_initializer, "in-class initializer")
    scenario("missing fault-log init", drop_fault_rate_initializer,
             "in-class initializer")
    scenario("missing loss-tally init", drop_loss_tally_initializer,
             "in-class initializer")
    scenario("bad metric name", bad_metric_name, "violates p2sim_")
    scenario("duplicate metric site", duplicate_metric_site,
             "registration site")
    def drop_pool_initializer(tmp):
        p = tmp / "src/util/task_pool.hpp"
        p.write_text(
            p.read_text().replace("int threads_ = 1;", "int threads_;", 1)
        )

    def drop_lane_output_initializer(tmp):
        p = tmp / "src/workload/lane.hpp"
        p.write_text(
            p.read_text().replace(
                "double interval_busy_s = 0.0;",
                "double interval_busy_s;", 1
            )
        )

    def drop_service_ring_initializer(tmp):
        p = tmp / "src/telemetry/service.hpp"
        p.write_text(
            p.read_text().replace(
                "std::size_t max_job_samples = 4096;",
                "std::size_t max_job_samples;", 1
            )
        )

    def drop_http_status_initializer(tmp):
        p = tmp / "src/util/http_server.hpp"
        p.write_text(
            p.read_text().replace("int status = 200;", "int status;", 1)
        )

    def duplicate_server_metric_site(tmp):
        p = tmp / "src/telemetry/service.hpp"
        p.write_text(
            p.read_text()
            + 'inline const char* kDupA = "p2sim_server_requests_total";\n'
            + 'inline const char* kDupB = "p2sim_server_requests_total";\n'
        )

    scenario("missing health-sample init", drop_health_initializer,
             "in-class initializer")
    scenario("missing task-pool init", drop_pool_initializer,
             "in-class initializer")
    scenario("missing lane-output init", drop_lane_output_initializer,
             "in-class initializer")
    scenario("missing monitor-service init", drop_service_ring_initializer,
             "in-class initializer")
    scenario("missing http-response init", drop_http_status_initializer,
             "in-class initializer")
    scenario("duplicate server metric site", duplicate_server_metric_site,
             "registration site")

    def drop_field_table_row(tmp):
        p = tmp / FIELD_TABLE_HPP
        text = re.sub(
            r'\{"dcache_store".*?\},\n', "", p.read_text(), flags=re.DOTALL
        )
        p.write_text(re.sub(r"std::array<ScaledField, 23>",
                            "std::array<ScaledField, 22>", text))

    def misspell_unscaled_field(tmp):
        p = tmp / FIELD_TABLE_HPP
        p.write_text(p.read_text().replace('"dma_read",', '"dma_red",', 1))

    def mismatch_row_name(tmp):
        p = tmp / FIELD_TABLE_HPP
        p.write_text(
            p.read_text().replace(
                '{"tlb_miss", &EventSignature::tlb_miss,',
                '{"tlb_misses", &EventSignature::tlb_miss,', 1
            )
        )

    def duplicate_coverage(tmp):
        p = tmp / FIELD_TABLE_HPP
        p.write_text(
            p.read_text().replace('"dma_read",', '"dma_read",\n    "cycles",',
                                  1)
        )

    scenario("field-table row dropped", drop_field_table_row,
             "not covered by the field table")
    scenario("unscaled field misspelled", misspell_unscaled_field,
             "is not an EventCounts member")
    scenario("field-table name mismatch", mismatch_row_name,
             "the store-format name must match")
    scenario("field covered twice", duplicate_coverage,
             "must partition EventCounts")

    # The pristine tree must be clean, or the lint gate is vacuous.
    rc = run_lint(REPO)
    if rc != 0:
        failures.append("pristine tree failed the lint")

    for f in failures:
        print(f"self-test FAILED: {f}", file=sys.stderr)
    if failures:
        return 1
    print("lint_events: self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-test", action="store_true",
                    help="verify the linter catches seeded defects")
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repo root to lint (default: this repo)")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
