file(REMOVE_RECURSE
  "CMakeFiles/power2_tests.dir/power2/cache_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/cache_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/core_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/core_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/kernel_desc_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/kernel_desc_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/mix_kernel_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/mix_kernel_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/signature_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/signature_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/tlb_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/tlb_test.cpp.o.d"
  "CMakeFiles/power2_tests.dir/power2/trace_test.cpp.o"
  "CMakeFiles/power2_tests.dir/power2/trace_test.cpp.o.d"
  "power2_tests"
  "power2_tests.pdb"
  "power2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
