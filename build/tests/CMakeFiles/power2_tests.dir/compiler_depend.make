# Empty compiler generated dependencies file for power2_tests.
# This may be replaced when dependencies are built.
