file(REMOVE_RECURSE
  "CMakeFiles/hpm_tests.dir/hpm/monitor_test.cpp.o"
  "CMakeFiles/hpm_tests.dir/hpm/monitor_test.cpp.o.d"
  "CMakeFiles/hpm_tests.dir/hpm/selection_test.cpp.o"
  "CMakeFiles/hpm_tests.dir/hpm/selection_test.cpp.o.d"
  "hpm_tests"
  "hpm_tests.pdb"
  "hpm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
