# Empty dependencies file for hpm_tests.
# This may be replaced when dependencies are built.
