file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/driver_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/driver_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/jobgen_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/jobgen_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/kernels_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/kernels_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/npb_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/npb_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/presets_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/presets_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/stencil_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/stencil_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/user_codes_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/user_codes_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
