file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/daily_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/daily_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/figures_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/figures_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/record_io_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/record_io_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/report_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/tables_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/tables_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/trends_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/trends_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/users_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/users_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
