file(REMOVE_RECURSE
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/daemon_test.cpp.o"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/daemon_test.cpp.o.d"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/derived_test.cpp.o"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/derived_test.cpp.o.d"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/job_monitor_test.cpp.o"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/job_monitor_test.cpp.o.d"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/profiler_test.cpp.o"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/profiler_test.cpp.o.d"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/snapshot_test.cpp.o"
  "CMakeFiles/rs2hpm_tests.dir/rs2hpm/snapshot_test.cpp.o.d"
  "rs2hpm_tests"
  "rs2hpm_tests.pdb"
  "rs2hpm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs2hpm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
