# Empty compiler generated dependencies file for rs2hpm_tests.
# This may be replaced when dependencies are built.
