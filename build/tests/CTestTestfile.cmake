# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/power2_tests[1]_include.cmake")
include("/root/repo/build/tests/hpm_tests[1]_include.cmake")
include("/root/repo/build/tests/rs2hpm_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/pbs_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
