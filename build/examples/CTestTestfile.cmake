# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_lab "/root/repo/build/examples/kernel_lab")
set_tests_properties(example_kernel_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_counter_explorer "/root/repo/build/examples/counter_explorer")
set_tests_properties(example_counter_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paging_study "/root/repo/build/examples/paging_study")
set_tests_properties(example_paging_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_trace "/root/repo/build/examples/pipeline_trace")
set_tests_properties(example_pipeline_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_application "/root/repo/build/examples/profile_application")
set_tests_properties(example_profile_application PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sp2_report "/root/repo/build/examples/sp2_report" "--days" "3" "--nodes" "8" "--outdir" "sp2_report_test_out" "--quiet")
set_tests_properties(example_sp2_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
