file(REMOVE_RECURSE
  "CMakeFiles/paging_study.dir/paging_study.cpp.o"
  "CMakeFiles/paging_study.dir/paging_study.cpp.o.d"
  "paging_study"
  "paging_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paging_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
