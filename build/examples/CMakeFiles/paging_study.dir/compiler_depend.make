# Empty compiler generated dependencies file for paging_study.
# This may be replaced when dependencies are built.
