# Empty compiler generated dependencies file for kernel_lab.
# This may be replaced when dependencies are built.
