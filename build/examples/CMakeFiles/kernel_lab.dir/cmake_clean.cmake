file(REMOVE_RECURSE
  "CMakeFiles/kernel_lab.dir/kernel_lab.cpp.o"
  "CMakeFiles/kernel_lab.dir/kernel_lab.cpp.o.d"
  "kernel_lab"
  "kernel_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
