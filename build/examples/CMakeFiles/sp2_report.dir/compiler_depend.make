# Empty compiler generated dependencies file for sp2_report.
# This may be replaced when dependencies are built.
