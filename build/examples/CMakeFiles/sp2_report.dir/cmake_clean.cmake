file(REMOVE_RECURSE
  "CMakeFiles/sp2_report.dir/sp2_report.cpp.o"
  "CMakeFiles/sp2_report.dir/sp2_report.cpp.o.d"
  "sp2_report"
  "sp2_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp2_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
