file(REMOVE_RECURSE
  "CMakeFiles/campaign_report.dir/campaign_report.cpp.o"
  "CMakeFiles/campaign_report.dir/campaign_report.cpp.o.d"
  "campaign_report"
  "campaign_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
