file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_iowait.dir/bench_ext_iowait.cpp.o"
  "CMakeFiles/bench_ext_iowait.dir/bench_ext_iowait.cpp.o.d"
  "bench_ext_iowait"
  "bench_ext_iowait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_iowait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
