# Empty dependencies file for bench_ext_iowait.
# This may be replaced when dependencies are built.
