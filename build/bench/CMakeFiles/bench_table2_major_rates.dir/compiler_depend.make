# Empty compiler generated dependencies file for bench_table2_major_rates.
# This may be replaced when dependencies are built.
