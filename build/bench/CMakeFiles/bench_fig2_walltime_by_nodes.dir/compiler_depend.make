# Empty compiler generated dependencies file for bench_fig2_walltime_by_nodes.
# This may be replaced when dependencies are built.
