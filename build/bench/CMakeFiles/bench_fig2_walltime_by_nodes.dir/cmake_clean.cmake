file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_walltime_by_nodes.dir/bench_fig2_walltime_by_nodes.cpp.o"
  "CMakeFiles/bench_fig2_walltime_by_nodes.dir/bench_fig2_walltime_by_nodes.cpp.o.d"
  "bench_fig2_walltime_by_nodes"
  "bench_fig2_walltime_by_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_walltime_by_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
