file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_system_intervention.dir/bench_fig5_system_intervention.cpp.o"
  "CMakeFiles/bench_fig5_system_intervention.dir/bench_fig5_system_intervention.cpp.o.d"
  "bench_fig5_system_intervention"
  "bench_fig5_system_intervention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_system_intervention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
