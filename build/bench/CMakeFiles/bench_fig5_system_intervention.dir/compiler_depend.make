# Empty compiler generated dependencies file for bench_fig5_system_intervention.
# This may be replaced when dependencies are built.
