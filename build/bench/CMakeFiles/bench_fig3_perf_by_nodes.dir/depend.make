# Empty dependencies file for bench_fig3_perf_by_nodes.
# This may be replaced when dependencies are built.
