# Empty dependencies file for p2sim_bench_common.
# This may be replaced when dependencies are built.
