file(REMOVE_RECURSE
  "libp2sim_bench_common.a"
)
