file(REMOVE_RECURSE
  "CMakeFiles/p2sim_bench_common.dir/common.cpp.o"
  "CMakeFiles/p2sim_bench_common.dir/common.cpp.o.d"
  "libp2sim_bench_common.a"
  "libp2sim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
