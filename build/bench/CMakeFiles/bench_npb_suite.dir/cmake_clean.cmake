file(REMOVE_RECURSE
  "CMakeFiles/bench_npb_suite.dir/bench_npb_suite.cpp.o"
  "CMakeFiles/bench_npb_suite.dir/bench_npb_suite.cpp.o.d"
  "bench_npb_suite"
  "bench_npb_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npb_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
