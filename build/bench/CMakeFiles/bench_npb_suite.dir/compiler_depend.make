# Empty compiler generated dependencies file for bench_npb_suite.
# This may be replaced when dependencies are built.
