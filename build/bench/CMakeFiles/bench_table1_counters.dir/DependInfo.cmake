
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_counters.cpp" "bench/CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/p2sim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/p2sim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p2sim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pbs/CMakeFiles/p2sim_pbs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/p2sim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/hpm/CMakeFiles/p2sim_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/power2/CMakeFiles/p2sim_power2.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2sim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
