# Empty compiler generated dependencies file for bench_trends.
# This may be replaced when dependencies are built.
