file(REMOVE_RECURSE
  "CMakeFiles/bench_trends.dir/bench_trends.cpp.o"
  "CMakeFiles/bench_trends.dir/bench_trends.cpp.o.d"
  "bench_trends"
  "bench_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
