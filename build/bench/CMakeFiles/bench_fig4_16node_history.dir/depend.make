# Empty dependencies file for bench_fig4_16node_history.
# This may be replaced when dependencies are built.
