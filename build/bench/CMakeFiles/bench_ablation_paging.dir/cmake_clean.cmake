file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_paging.dir/bench_ablation_paging.cpp.o"
  "CMakeFiles/bench_ablation_paging.dir/bench_ablation_paging.cpp.o.d"
  "bench_ablation_paging"
  "bench_ablation_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
