file(REMOVE_RECURSE
  "libp2sim_power2.a"
)
