file(REMOVE_RECURSE
  "CMakeFiles/p2sim_power2.dir/cache.cpp.o"
  "CMakeFiles/p2sim_power2.dir/cache.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/core.cpp.o"
  "CMakeFiles/p2sim_power2.dir/core.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/event_counts.cpp.o"
  "CMakeFiles/p2sim_power2.dir/event_counts.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/isa.cpp.o"
  "CMakeFiles/p2sim_power2.dir/isa.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/kernel_desc.cpp.o"
  "CMakeFiles/p2sim_power2.dir/kernel_desc.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/mix_kernel.cpp.o"
  "CMakeFiles/p2sim_power2.dir/mix_kernel.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/signature.cpp.o"
  "CMakeFiles/p2sim_power2.dir/signature.cpp.o.d"
  "CMakeFiles/p2sim_power2.dir/tlb.cpp.o"
  "CMakeFiles/p2sim_power2.dir/tlb.cpp.o.d"
  "libp2sim_power2.a"
  "libp2sim_power2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_power2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
