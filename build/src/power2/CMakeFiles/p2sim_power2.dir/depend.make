# Empty dependencies file for p2sim_power2.
# This may be replaced when dependencies are built.
