
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power2/cache.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/cache.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/cache.cpp.o.d"
  "/root/repo/src/power2/core.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/core.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/core.cpp.o.d"
  "/root/repo/src/power2/event_counts.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/event_counts.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/event_counts.cpp.o.d"
  "/root/repo/src/power2/isa.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/isa.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/isa.cpp.o.d"
  "/root/repo/src/power2/kernel_desc.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/kernel_desc.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/kernel_desc.cpp.o.d"
  "/root/repo/src/power2/mix_kernel.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/mix_kernel.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/mix_kernel.cpp.o.d"
  "/root/repo/src/power2/signature.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/signature.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/signature.cpp.o.d"
  "/root/repo/src/power2/tlb.cpp" "src/power2/CMakeFiles/p2sim_power2.dir/tlb.cpp.o" "gcc" "src/power2/CMakeFiles/p2sim_power2.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2sim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
