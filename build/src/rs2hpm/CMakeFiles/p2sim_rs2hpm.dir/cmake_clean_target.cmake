file(REMOVE_RECURSE
  "libp2sim_rs2hpm.a"
)
