
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rs2hpm/daemon.cpp" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/daemon.cpp.o" "gcc" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/daemon.cpp.o.d"
  "/root/repo/src/rs2hpm/derived.cpp" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/derived.cpp.o" "gcc" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/derived.cpp.o.d"
  "/root/repo/src/rs2hpm/job_monitor.cpp" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/job_monitor.cpp.o" "gcc" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/job_monitor.cpp.o.d"
  "/root/repo/src/rs2hpm/profiler.cpp" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/profiler.cpp.o" "gcc" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/profiler.cpp.o.d"
  "/root/repo/src/rs2hpm/snapshot.cpp" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/snapshot.cpp.o" "gcc" "src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpm/CMakeFiles/p2sim_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2sim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power2/CMakeFiles/p2sim_power2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
