# Empty dependencies file for p2sim_rs2hpm.
# This may be replaced when dependencies are built.
