file(REMOVE_RECURSE
  "CMakeFiles/p2sim_rs2hpm.dir/daemon.cpp.o"
  "CMakeFiles/p2sim_rs2hpm.dir/daemon.cpp.o.d"
  "CMakeFiles/p2sim_rs2hpm.dir/derived.cpp.o"
  "CMakeFiles/p2sim_rs2hpm.dir/derived.cpp.o.d"
  "CMakeFiles/p2sim_rs2hpm.dir/job_monitor.cpp.o"
  "CMakeFiles/p2sim_rs2hpm.dir/job_monitor.cpp.o.d"
  "CMakeFiles/p2sim_rs2hpm.dir/profiler.cpp.o"
  "CMakeFiles/p2sim_rs2hpm.dir/profiler.cpp.o.d"
  "CMakeFiles/p2sim_rs2hpm.dir/snapshot.cpp.o"
  "CMakeFiles/p2sim_rs2hpm.dir/snapshot.cpp.o.d"
  "libp2sim_rs2hpm.a"
  "libp2sim_rs2hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_rs2hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
