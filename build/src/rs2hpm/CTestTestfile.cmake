# CMake generated Testfile for 
# Source directory: /root/repo/src/rs2hpm
# Build directory: /root/repo/build/src/rs2hpm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
