file(REMOVE_RECURSE
  "libp2sim_hpm.a"
)
