file(REMOVE_RECURSE
  "CMakeFiles/p2sim_hpm.dir/events.cpp.o"
  "CMakeFiles/p2sim_hpm.dir/events.cpp.o.d"
  "CMakeFiles/p2sim_hpm.dir/monitor.cpp.o"
  "CMakeFiles/p2sim_hpm.dir/monitor.cpp.o.d"
  "libp2sim_hpm.a"
  "libp2sim_hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
