file(REMOVE_RECURSE
  "libp2sim_core.a"
)
