file(REMOVE_RECURSE
  "CMakeFiles/p2sim_core.dir/simulation.cpp.o"
  "CMakeFiles/p2sim_core.dir/simulation.cpp.o.d"
  "libp2sim_core.a"
  "libp2sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
