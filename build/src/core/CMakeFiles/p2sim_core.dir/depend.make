# Empty dependencies file for p2sim_core.
# This may be replaced when dependencies are built.
