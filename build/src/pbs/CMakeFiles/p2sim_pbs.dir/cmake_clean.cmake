file(REMOVE_RECURSE
  "CMakeFiles/p2sim_pbs.dir/accounting.cpp.o"
  "CMakeFiles/p2sim_pbs.dir/accounting.cpp.o.d"
  "CMakeFiles/p2sim_pbs.dir/scheduler.cpp.o"
  "CMakeFiles/p2sim_pbs.dir/scheduler.cpp.o.d"
  "libp2sim_pbs.a"
  "libp2sim_pbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_pbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
