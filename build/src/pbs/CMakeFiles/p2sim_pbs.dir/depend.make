# Empty dependencies file for p2sim_pbs.
# This may be replaced when dependencies are built.
