file(REMOVE_RECURSE
  "libp2sim_pbs.a"
)
