
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbs/accounting.cpp" "src/pbs/CMakeFiles/p2sim_pbs.dir/accounting.cpp.o" "gcc" "src/pbs/CMakeFiles/p2sim_pbs.dir/accounting.cpp.o.d"
  "/root/repo/src/pbs/scheduler.cpp" "src/pbs/CMakeFiles/p2sim_pbs.dir/scheduler.cpp.o" "gcc" "src/pbs/CMakeFiles/p2sim_pbs.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2sim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hpm/CMakeFiles/p2sim_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/power2/CMakeFiles/p2sim_power2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
