file(REMOVE_RECURSE
  "CMakeFiles/p2sim_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/p2sim_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/p2sim_util.dir/csv.cpp.o"
  "CMakeFiles/p2sim_util.dir/csv.cpp.o.d"
  "CMakeFiles/p2sim_util.dir/histogram.cpp.o"
  "CMakeFiles/p2sim_util.dir/histogram.cpp.o.d"
  "CMakeFiles/p2sim_util.dir/rng.cpp.o"
  "CMakeFiles/p2sim_util.dir/rng.cpp.o.d"
  "CMakeFiles/p2sim_util.dir/sim_time.cpp.o"
  "CMakeFiles/p2sim_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/p2sim_util.dir/stats.cpp.o"
  "CMakeFiles/p2sim_util.dir/stats.cpp.o.d"
  "libp2sim_util.a"
  "libp2sim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
