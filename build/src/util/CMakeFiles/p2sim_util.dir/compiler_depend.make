# Empty compiler generated dependencies file for p2sim_util.
# This may be replaced when dependencies are built.
