file(REMOVE_RECURSE
  "libp2sim_util.a"
)
