file(REMOVE_RECURSE
  "CMakeFiles/p2sim_cluster.dir/dma.cpp.o"
  "CMakeFiles/p2sim_cluster.dir/dma.cpp.o.d"
  "CMakeFiles/p2sim_cluster.dir/node.cpp.o"
  "CMakeFiles/p2sim_cluster.dir/node.cpp.o.d"
  "libp2sim_cluster.a"
  "libp2sim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
