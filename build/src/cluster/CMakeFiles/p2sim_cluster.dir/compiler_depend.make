# Empty compiler generated dependencies file for p2sim_cluster.
# This may be replaced when dependencies are built.
