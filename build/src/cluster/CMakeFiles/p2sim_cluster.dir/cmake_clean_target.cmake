file(REMOVE_RECURSE
  "libp2sim_cluster.a"
)
