
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/driver.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/driver.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/driver.cpp.o.d"
  "/root/repo/src/workload/jobgen.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/jobgen.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/jobgen.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/kernels.cpp.o.d"
  "/root/repo/src/workload/npb.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/npb.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/npb.cpp.o.d"
  "/root/repo/src/workload/presets.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/presets.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/presets.cpp.o.d"
  "/root/repo/src/workload/stencil.cpp" "src/workload/CMakeFiles/p2sim_workload.dir/stencil.cpp.o" "gcc" "src/workload/CMakeFiles/p2sim_workload.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbs/CMakeFiles/p2sim_pbs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/p2sim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rs2hpm/CMakeFiles/p2sim_rs2hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/power2/CMakeFiles/p2sim_power2.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2sim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hpm/CMakeFiles/p2sim_hpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
