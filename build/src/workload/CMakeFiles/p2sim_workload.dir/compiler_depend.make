# Empty compiler generated dependencies file for p2sim_workload.
# This may be replaced when dependencies are built.
