file(REMOVE_RECURSE
  "libp2sim_workload.a"
)
