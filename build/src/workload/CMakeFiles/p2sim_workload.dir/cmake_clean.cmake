file(REMOVE_RECURSE
  "CMakeFiles/p2sim_workload.dir/driver.cpp.o"
  "CMakeFiles/p2sim_workload.dir/driver.cpp.o.d"
  "CMakeFiles/p2sim_workload.dir/jobgen.cpp.o"
  "CMakeFiles/p2sim_workload.dir/jobgen.cpp.o.d"
  "CMakeFiles/p2sim_workload.dir/kernels.cpp.o"
  "CMakeFiles/p2sim_workload.dir/kernels.cpp.o.d"
  "CMakeFiles/p2sim_workload.dir/npb.cpp.o"
  "CMakeFiles/p2sim_workload.dir/npb.cpp.o.d"
  "CMakeFiles/p2sim_workload.dir/presets.cpp.o"
  "CMakeFiles/p2sim_workload.dir/presets.cpp.o.d"
  "CMakeFiles/p2sim_workload.dir/stencil.cpp.o"
  "CMakeFiles/p2sim_workload.dir/stencil.cpp.o.d"
  "libp2sim_workload.a"
  "libp2sim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
