file(REMOVE_RECURSE
  "libp2sim_analysis.a"
)
