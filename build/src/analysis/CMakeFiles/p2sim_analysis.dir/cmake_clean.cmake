file(REMOVE_RECURSE
  "CMakeFiles/p2sim_analysis.dir/daily.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/daily.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/figures.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/record_io.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/record_io.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/report.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/report.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/tables.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/tables.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/trends.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/trends.cpp.o.d"
  "CMakeFiles/p2sim_analysis.dir/users.cpp.o"
  "CMakeFiles/p2sim_analysis.dir/users.cpp.o.d"
  "libp2sim_analysis.a"
  "libp2sim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2sim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
