# Empty compiler generated dependencies file for p2sim_analysis.
# This may be replaced when dependencies are built.
